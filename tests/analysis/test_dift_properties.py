"""Property-based tests for the Clueless/DIFT invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Clueless
from repro.common import word_addr
from repro.isa import Program

# Random little programs over a small register/address universe.
op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["li", "load", "load_off", "alu", "store", "branch"]),
        st.integers(min_value=1, max_value=7),  # dest-ish register
        st.integers(min_value=1, max_value=7),  # src-ish register
        st.integers(min_value=0, max_value=15),  # address slot
    ),
    min_size=1,
    max_size=60,
)


def build_program(ops):
    """Interpret the op tuples into a valid program.

    Registers are pre-seeded with valid addresses so loads always have a
    plausible target; slots map to a 16-word arena holding pointers into
    itself.
    """
    prog = Program()
    arena = 0x8000
    for i in range(16):
        prog.poke(arena + i * 8, arena + ((i * 5 + 3) % 16) * 8)
    for reg in range(1, 8):
        prog.li(reg, arena + (reg % 16) * 8)
    for kind, dest, src, slot in ops:
        if kind == "li":
            prog.li(dest, arena + slot * 8)
        elif kind == "load":
            prog.load(dest, base=src)
        elif kind == "load_off":
            prog.load(dest, base=src, offset=8)
        elif kind == "alu":
            prog.alu(dest, src)
        elif kind == "store":
            prog.store(src, base=dest)
        else:
            prog.branch(src)
        # Keep register contents pointing into the arena so the *next*
        # load dereferences something sane.
        for reg in range(1, 8):
            value = prog.regs[reg]
            if not arena <= value < arena + 16 * 8:
                prog.li(reg, arena + ((value + reg) % 16) * 8)
    return prog


class TestDiftProperties:
    @given(ops=op_strategy)
    @settings(max_examples=80, deadline=None)
    def test_pairs_are_a_subset_of_dift(self, ops):
        """Every pair-leaked word must also be DIFT-leaked (§6.1)."""
        prog = build_program(ops)
        report = Clueless().run(prog.trace())
        assert report.pair_leaked_words <= report.dift_leaked_words
        assert report.pair_fraction <= report.dift_fraction + 1e-9

    @given(ops=op_strategy)
    @settings(max_examples=80, deadline=None)
    def test_leaked_words_within_footprint(self, ops):
        prog = build_program(ops)
        report = Clueless().run(prog.trace())
        assert report.dift_leaked_words <= report.footprint_words
        assert 0.0 <= report.dift_fraction <= 1.0
        assert 0.0 <= report.pair_fraction <= 1.0

    @given(ops=op_strategy)
    @settings(max_examples=50, deadline=None)
    def test_final_store_conceals_everything_it_wrote(self, ops):
        """Storing to every leaked word at the end conceals them all."""
        prog = build_program(ops)
        analyzer = Clueless()
        for uop in prog.trace():
            analyzer.step(uop)
        report = analyzer.report()
        # Overwrite the whole arena non-dependently.
        closing = Program()
        closing.li(1, 0)
        for i in range(16):
            closing.store_abs(1, 0x8000 + i * 8)
        for uop in closing.trace():
            analyzer.step(uop)
        final = analyzer.report()
        assert final.dift_leaked_words == 0
        assert final.pair_leaked_words == 0

    @given(ops=op_strategy)
    @settings(max_examples=50, deadline=None)
    def test_analysis_is_deterministic(self, ops):
        a = Clueless().run(build_program(ops).trace())
        b = Clueless().run(build_program(ops).trace())
        assert a == b
