"""Unit tests for the Clueless leakage analyzer."""

from repro.analysis import Clueless, DiftEngine
from repro.isa import Program


def analyze(prog):
    return Clueless().run(prog.trace())


class TestDirectLoadPairs:
    def test_simple_pair_leaks_first_address(self):
        prog = Program()
        prog.poke(0x1000, 0x2000)
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        prog.load(3, base=2)
        report = analyze(prog)
        assert report.pair_leaked_words == 1
        assert report.dift_leaked_words == 1
        assert report.pair_coverage == 1.0

    def test_offset_still_a_pair(self):
        """Paper section 4.3: immediate offsets do not break a pair."""
        prog = Program()
        prog.poke(0x1000, 0x2000)
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        prog.load(3, base=2, offset=0x10)
        report = analyze(prog)
        assert report.pair_leaked_words == 1

    def test_indirect_dependence_not_a_pair(self):
        """The PC1..PC5 example of section 4.3."""
        prog = Program()
        prog.poke(0x13 * 8, 0x3000)
        prog.poke(0x7 * 8, 0x4000)
        prog.li(1, 0x13 * 8)
        prog.li(2, 0x7 * 8)
        prog.load(3, base=1)      # PC1
        prog.load(4, base=2)      # PC2
        prog.alu(5, 3, 4)         # PC3
        prog.load(6, base=5)      # PC4: leaks both, but NOT a direct pair
        report = analyze(prog)
        assert report.dift_leaked_words == 2
        assert report.pair_leaked_words == 0

    def test_direct_and_indirect_mixed(self):
        prog = Program()
        prog.poke(0x1000, 0x3000)
        prog.poke(0x1008, 0x4000)
        prog.li(1, 0x1000)
        prog.load(2, base=1)             # value of 0x1000
        prog.load(3, base=1, offset=8)   # value of 0x1008
        prog.alu(4, 3)                   # manipulated
        prog.load(5, base=2)             # direct pair: leaks 0x1000
        prog.load(6, base=4)             # indirect: leaks 0x1008 (DIFT only)
        report = analyze(prog)
        assert report.pair_leaked_words == 1
        assert report.dift_leaked_words == 2
        assert 0.0 < report.pair_coverage < 1.0

    def test_store_conceals_pair_leak(self):
        prog = Program()
        prog.poke(0x1000, 0x2000)
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        prog.load(3, base=2)     # 0x1000 leaked
        prog.li(4, 7)
        prog.store(4, base=1)    # new value at 0x1000: concealed again
        report = analyze(prog)
        assert report.pair_leaked_words == 0
        assert report.dift_leaked_words == 0


class TestGlobalDift:
    def test_leak_through_memory(self):
        """A value copied through memory still leaks its original home."""
        prog = Program()
        prog.poke(0x1000, 0x5000)
        prog.li(1, 0x1000)
        prog.li(2, 0x2000)
        prog.load(3, base=1)    # r3 = [0x1000]
        prog.store(3, base=2)   # [0x2000] = r3
        prog.load(4, base=2)    # r4 = [0x2000] (same value)
        prog.load(5, base=4)    # dereference: leaks 0x2000 AND 0x1000
        report = analyze(prog)
        assert report.dift_leaked_words == 2
        # The 0x2000 hop IS a direct pair; 0x1000 is not.
        assert report.pair_leaked_words == 1

    def test_store_address_leaks_sources_too(self):
        """Using a loaded value as a *store* address leaks it (DIFT)."""
        prog = Program()
        prog.poke(0x1000, 0x6000)
        prog.li(1, 0x1000)
        prog.li(2, 9)
        prog.load(3, base=1)
        prog.store(2, base=3)   # store to [r3]: r3's home leaks
        report = analyze(prog)
        assert report.dift_leaked_words == 1
        assert report.pair_leaked_words == 0  # pairs are load-load only

    def test_untouched_program_leaks_nothing(self):
        prog = Program()
        for i in range(8):
            prog.li(i, i)
            prog.alu(i, i)
        report = analyze(prog)
        assert report.footprint_words == 0
        assert report.dift_fraction == 0.0
        assert report.pair_fraction == 0.0

    def test_branches_do_not_leak(self):
        prog = Program()
        prog.poke(0x1000, 3)
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        prog.branch(2)  # control dependence: not explicit leakage
        report = analyze(prog)
        assert report.dift_leaked_words == 0

    def test_peak_tracks_transient_leaks(self):
        prog = Program()
        prog.poke(0x1000, 0x2000)
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        prog.load(3, base=2)     # leaked: peak 1
        prog.li(4, 7)
        prog.store(4, base=1)    # concealed again
        engine = DiftEngine()
        for uop in prog.trace():
            engine.step(uop)
        assert engine.peak_leaked == 1
        assert len(engine.leaked) == 0

    def test_fractions_use_footprint(self):
        prog = Program()
        prog.poke(0x1000, 0x2000)
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        prog.load(3, base=2)         # footprint: 0x1000, 0x2000; leak 0x1000
        prog.li(5, 0x3000)
        prog.load(6, base=5)         # footprint: 0x3000
        report = analyze(prog)
        assert report.footprint_words == 3
        assert abs(report.dift_fraction - 1 / 3) < 1e-9


class TestReconLptAgreement:
    def test_clueless_pairs_match_lpt_detection(self):
        """The trace-level pair tracker and the commit-stage LPT agree."""
        from repro.common import SchemeKind
        from tests.helpers import run_program

        prog = Program()
        prog.poke(0x1000, 0x2000)
        prog.poke(0x2000, 0x3000)
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        prog.load(3, base=2)
        prog.load(4, base=3)
        report = Clueless().run(prog.trace())
        core = run_program(prog, SchemeKind.STT_RECON)
        assert core.stats.load_pairs_detected == report.pair_leaked_words == 2
