"""Clueless's direct load-pair mode on the adversarial gadget traces.

The red-team harness decides "was the secret public at attack time"
with *global DIFT* over each gadget's architectural prefix.  ReCon's
hardware detector is the cheaper *direct load-pair* tracker, so these
tests pin down exactly where the two modes agree on the catalog:

* on the architectural prefix — the committed execution the harness
  analyzes — the pair tracker flags each gadget's secret word exactly
  where full DIFT does, for every gadget except ``indirect_chain``;
* ``indirect_chain`` is the catalog's deliberate divergence: the
  pointer leaks through an ALU copy, which DIFT follows and the pair
  tracker (like the LPT) does not — so ReCon stays conservative there;
* on the full trace, ``v1_1_spec_store_forward`` shows the other
  blind spot: taint laundered through memory (store then forwarded
  load) reaches DIFT but never forms a direct pair on the secret.
"""

import pytest

from repro.analysis import Clueless
from repro.workloads.gadgets import CATALOG, build_gadget

#: Gadgets whose architectural prefix leaks the secret through a chain
#: the pair tracker cannot follow (DIFT yes, pairs no).
PREFIX_DIVERGENT = frozenset({"indirect_chain"})

#: Gadgets whose *full* trace leaks the secret only through memory
#: indirection (DIFT yes, pairs no).
FULL_TRACE_DIVERGENT = frozenset({"v1_1_spec_store_forward", "implicit_branch"})


def _leaked_sets(built, *, prefix_only):
    """(dift, pair) leaked-word unions across the gadget's cores."""
    dift, pair = set(), set()
    for prog, end in zip(built.programs, built.prefix_ends):
        trace = prog.trace()
        if prefix_only:
            trace = trace[:end]
        clueless = Clueless()
        for uop in trace:
            clueless.step(uop)
        dift |= clueless.dift_leaked
        pair |= clueless.pair_leaked
    return dift, pair


@pytest.mark.parametrize("case", CATALOG, ids=lambda case: case.name)
def test_pair_mode_matches_dift_on_architectural_prefix(case):
    """Pair-only tracking flags the secret exactly where DIFT does."""
    built = build_gadget(case.name)
    dift, pair = _leaked_sets(built, prefix_only=True)
    secret = built.secret_word
    if case.name in PREFIX_DIVERGENT:
        assert secret in dift and secret not in pair
    else:
        assert (secret in dift) == (secret in pair)


@pytest.mark.parametrize("case", CATALOG, ids=lambda case: case.name)
def test_pair_mode_on_full_adversarial_trace(case):
    """Once the speculative region commits, the transmitter's own
    dereference turns every direct-pair gadget into a pair-mode hit —
    except the two chains the LPT is blind to by design."""
    built = build_gadget(case.name)
    dift, pair = _leaked_sets(built, prefix_only=False)
    secret = built.secret_word
    if case.name == "implicit_branch":
        # The implicit channel never turns the secret into an address:
        # invisible to both explicit-flow trackers.
        assert secret not in dift and secret not in pair
    elif case.name in FULL_TRACE_DIVERGENT:
        assert secret in dift and secret not in pair
    else:
        assert secret in dift and secret in pair


def test_reveal_then_conceal_is_private_again():
    """The concealing store retracts the reveal in BOTH trackers."""
    built = build_gadget("reveal_conceal_rederef")
    dift, pair = _leaked_sets(built, prefix_only=True)
    secret = built.secret_word
    assert secret not in dift
    assert secret not in pair


def test_multicore_reveal_is_unioned_across_cores():
    """Core 0's architectural reveal makes the word public system-wide."""
    built = build_gadget("multicore_secret_sharing")
    assert built.threads == 2
    secret = built.secret_word
    per_core = []
    for prog, end in zip(built.programs, built.prefix_ends):
        clueless = Clueless()
        for uop in prog.trace()[:end]:
            clueless.step(uop)
        per_core.append(clueless.dift_leaked)
    assert secret in per_core[0]  # the revealing core
    assert secret not in per_core[1]  # the attacking core alone sees nothing
