"""Unit tests for leakage timelines."""

import pytest

from repro.analysis import leakage_timeline
from repro.isa import Program
from repro.workloads import build_trace, get_benchmark


class TestLeakageTimeline:
    def test_samples_at_interval(self):
        prog = Program()
        prog.poke(0x1000, 0x2000)
        prog.li(1, 0x1000)
        for _ in range(10):
            prog.load(2, base=1)
            prog.load(3, base=2)
        timeline = leakage_timeline(prog.trace(), interval=5)
        assert timeline.samples[0][0] == 5
        assert timeline.samples[-1][0] == len(prog)

    def test_leak_then_conceal_visible_in_series(self):
        prog = Program()
        prog.poke(0x1000, 0x2000)
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        prog.load(3, base=2)      # leaked after uop 3
        prog.li(4, 9)
        prog.store(4, base=1)     # concealed after uop 5
        prog.nop()
        timeline = leakage_timeline(prog.trace(), interval=1)
        dift = [s[1] for s in timeline.samples]
        assert max(dift) == 1
        assert dift[-1] == 0
        assert timeline.peak_dift == 1
        assert timeline.final == (0, 0)

    def test_pairs_never_exceed_dift(self):
        trace = build_trace(get_benchmark("spec2017", "omnetpp"), 3000).trace()
        timeline = leakage_timeline(trace, interval=250)
        for _, dift, pairs in timeline.samples:
            assert pairs <= dift

    def test_pointer_benchmark_accumulates_leakage(self):
        trace = build_trace(get_benchmark("spec2017", "mcf"), 3000).trace()
        timeline = leakage_timeline(trace, interval=500)
        dift = [s[1] for s in timeline.samples]
        assert dift[-1] > dift[0]
        assert timeline.peak_dift > 50

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            leakage_timeline([], interval=0)

    def test_empty_trace(self):
        timeline = leakage_timeline([], interval=10)
        assert timeline.samples == ()
        assert timeline.final == (0, 0)
        assert timeline.peak_dift == 0

    def test_as_rows(self):
        prog = Program()
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        rows = leakage_timeline(prog.trace(), interval=1).as_rows()
        assert len(rows) == 2
        assert all(len(row) == 3 for row in rows)
