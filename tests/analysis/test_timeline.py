"""Unit tests for leakage timelines."""

import pytest

from repro.analysis import leakage_timeline
from repro.isa import Program
from repro.workloads import build_trace, get_benchmark


class TestLeakageTimeline:
    def test_samples_at_interval(self):
        prog = Program()
        prog.poke(0x1000, 0x2000)
        prog.li(1, 0x1000)
        for _ in range(10):
            prog.load(2, base=1)
            prog.load(3, base=2)
        timeline = leakage_timeline(prog.trace(), interval=5)
        assert timeline.samples[0][0] == 5
        assert timeline.samples[-1][0] == len(prog)

    def test_leak_then_conceal_visible_in_series(self):
        prog = Program()
        prog.poke(0x1000, 0x2000)
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        prog.load(3, base=2)      # leaked after uop 3
        prog.li(4, 9)
        prog.store(4, base=1)     # concealed after uop 5
        prog.nop()
        timeline = leakage_timeline(prog.trace(), interval=1)
        dift = [s[1] for s in timeline.samples]
        assert max(dift) == 1
        assert dift[-1] == 0
        assert timeline.peak_dift == 1
        assert timeline.final == (0, 0)

    def test_pairs_never_exceed_dift(self):
        trace = build_trace(get_benchmark("spec2017", "omnetpp"), 3000).trace()
        timeline = leakage_timeline(trace, interval=250)
        for _, dift, pairs in timeline.samples:
            assert pairs <= dift

    def test_pointer_benchmark_accumulates_leakage(self):
        trace = build_trace(get_benchmark("spec2017", "mcf"), 3000).trace()
        timeline = leakage_timeline(trace, interval=500)
        dift = [s[1] for s in timeline.samples]
        assert dift[-1] > dift[0]
        assert timeline.peak_dift > 50

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            leakage_timeline([], interval=0)

    def test_empty_trace(self):
        timeline = leakage_timeline([], interval=10)
        assert timeline.samples == ()
        assert timeline.final == (0, 0)
        assert timeline.peak_dift == 0

    def test_as_rows(self):
        prog = Program()
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        rows = leakage_timeline(prog.trace(), interval=1).as_rows()
        assert len(rows) == 2
        assert all(len(row) == 3 for row in rows)


class TestLeakageTimelineEdges:
    def test_empty_timeline_properties(self):
        from repro.analysis import LeakageTimeline

        timeline = LeakageTimeline(interval=10, samples=())
        assert timeline.peak_dift == 0
        assert timeline.peak_pairs == 0
        assert timeline.final == (0, 0)
        assert timeline.as_rows() == []

    def test_single_sample_properties(self):
        from repro.analysis import LeakageTimeline

        timeline = LeakageTimeline(interval=10, samples=((7, 3, 1),))
        assert timeline.peak_dift == 3
        assert timeline.peak_pairs == 1
        assert timeline.final == (3, 1)
        assert timeline.as_rows() == [["7", "3", "1"]]


class TestTimelineSink:
    def test_rejects_bad_interval(self):
        from repro.analysis import TimelineSink

        with pytest.raises(ValueError):
            TimelineSink(interval=0)

    def test_empty_sink_yields_empty_timeline(self):
        from repro.analysis import TimelineSink

        timeline = TimelineSink(interval=10).timeline()
        assert timeline.samples == ()
        assert timeline.final == (0, 0)

    def test_event_bus_matches_legacy_timeline(self):
        """A traced run's timeline equals the post-hoc Clueless replay.

        Commit order on a correct-path trace *is* architectural order,
        so the streaming sink and the legacy re-run must agree sample
        for sample.
        """
        from repro.common import SchemeKind
        from repro.sim import RunConfig, run_benchmark
        from repro.telemetry import TelemetryConfig

        profile = get_benchmark("spec2017", "mcf")
        length, interval = 2000, 500
        result = run_benchmark(
            profile,
            SchemeKind.UNSAFE,
            length,
            config=RunConfig(
                telemetry=TelemetryConfig(timeline_interval=interval)
            ),
        )
        assert result.telemetry is not None
        legacy = leakage_timeline(
            build_trace(profile, length).trace(), interval=interval
        )
        assert result.telemetry.timeline is not None
        assert result.telemetry.timeline.samples == legacy.samples
