"""Tests for the stable ``repro.api`` facade."""

import pytest

from repro.api import (
    FaultPolicy,
    RunConfig,
    RunRecord,
    RunRequest,
    RunResult,
    SchemeKind,
    SuiteResult,
    TelemetryConfig,
    load_result,
    run_single,
    run_suite,
)
from repro.sim import TraceCache
from repro.sim.store import ResultStore
from repro.workloads import get_benchmark


class TestRunRequest:
    def test_resolve_string_forms(self):
        spec = RunRequest("spec2017/mcf", "stt+recon", 800).resolve()
        assert spec.profile.label == "spec2017/mcf"
        assert spec.scheme is SchemeKind.STT_RECON
        assert spec.length == 800

    def test_resolve_object_forms(self):
        profile = get_benchmark("spec2017", "gcc")
        spec = RunRequest(profile, SchemeKind.UNSAFE, 600).resolve()
        assert spec.profile is profile
        assert spec.scheme is SchemeKind.UNSAFE

    def test_unknown_benchmark_is_value_error(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            RunRequest("spec2017/nope", "unsafe", 800).resolve()

    def test_benchmark_without_suite_is_value_error(self):
        with pytest.raises(ValueError, match="suite/name"):
            RunRequest("mcf", "unsafe", 800).resolve()

    def test_unknown_scheme_is_value_error(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            RunRequest("spec2017/mcf", "nope", 800).resolve()

    def test_bad_length_is_value_error(self):
        with pytest.raises(ValueError, match="length"):
            RunRequest("spec2017/mcf", "unsafe", 0).resolve()

    def test_config_rides_into_spec(self):
        config = RunConfig(threads=2, warmup_uops=100)
        spec = RunRequest("parsec/canneal", "unsafe", 900, config).resolve()
        assert spec.threads == 2
        assert spec.warmup_uops == 100


class TestRunSingle:
    def test_returns_flat_record(self):
        record = run_single(
            RunRequest("spec2017/gcc", "unsafe", 800), store=False
        )
        assert isinstance(record, RunRecord)
        assert record.benchmark == "spec2017/gcc"
        assert record.scheme is SchemeKind.UNSAFE
        assert record.length == 800
        assert record.cycles > 0
        assert record.ipc > 0
        assert record.stats.committed_uops > 0
        assert len(record.per_core) == 1
        assert not record.from_store
        assert record.telemetry is None

    def test_matches_internal_runner(self):
        from repro.sim import run_benchmark

        record = run_single(
            RunRequest("spec2017/gcc", "stt", 800), store=False
        )
        reference = run_benchmark(
            get_benchmark("spec2017", "gcc"),
            SchemeKind.STT,
            800,
            config=RunConfig(cache=TraceCache()),
        )
        assert record.cycles == reference.cycles
        assert record.stats.as_dict() == reference.stats.as_dict()

    def test_store_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        request = RunRequest("spec2017/lbm", "unsafe", 700)
        first = run_single(request, store=store)
        second = run_single(request, store=store)
        assert not first.from_store
        assert second.from_store
        assert second.key == first.key
        assert second.cycles == first.cycles

    def test_telemetry_enabled_run(self):
        record = run_single(
            RunRequest(
                "spec2017/gcc",
                "stt+recon",
                800,
                RunConfig(telemetry=TelemetryConfig()),
            ),
            store=False,
        )
        assert record.telemetry is not None


class TestRunSuite:
    def test_grid_shape(self):
        requests = [
            RunRequest(f"spec2017/{name}", scheme, 700)
            for name in ("gcc", "mcf")
            for scheme in ("unsafe", "stt+recon")
        ]
        suite = run_suite(requests, store=False)
        assert isinstance(suite, SuiteResult)
        assert len(suite) == 4
        assert suite.get("gcc", SchemeKind.UNSAFE).ipc > 0
        assert suite.get("mcf", SchemeKind.STT_RECON).cycles > 0
        assert suite.ok

    def test_telemetry_override_applies_to_all_cells(self):
        suite = run_suite(
            [RunRequest("spec2017/gcc", "unsafe", 700)],
            telemetry=True,
            store=False,
        )
        result = suite.get("gcc", SchemeKind.UNSAFE)
        assert result.telemetry is not None

    def test_supervised_path_collects_failures(self):
        suite = run_suite(
            [RunRequest("spec2017/gcc", "unsafe", 700)],
            supervise=FaultPolicy(retries=0),
            jobs=1,
            store=False,
        )
        assert suite.ok
        assert suite.get("gcc", SchemeKind.UNSAFE) is not None

    def test_supervise_true_uses_default_policy(self):
        suite = run_suite(
            [RunRequest("spec2017/gcc", "unsafe", 700)],
            supervise=True,
            jobs=1,
            store=False,
        )
        assert suite.ok


class TestLoadResult:
    def test_round_trip_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        record = run_single(RunRequest("spec2017/gcc", "unsafe", 800))
        loaded = load_result(record.key)
        assert isinstance(loaded, RunResult)
        assert loaded.cycles == record.cycles
        assert loaded.stats.as_dict() == record.stats.as_dict()

    def test_absent_key_is_none(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        assert load_result("0" * 16) is None

    def test_store_disabled_is_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        assert load_result("0" * 16) is None
