"""Unit tests for the memory-dependence predictor."""

from repro.common import MemPrediction
from repro.core import MemoryDependencePredictor


class TestMemoryDependencePredictor:
    def test_default_predicts_mem(self):
        mdp = MemoryDependencePredictor()
        assert mdp.predict(0x100) is MemPrediction.MEM

    def test_violation_trains_to_stf(self):
        mdp = MemoryDependencePredictor()
        mdp.train_violation(0x100)
        assert mdp.predict(0x100) is MemPrediction.STF
        assert mdp.violations == 1

    def test_training_is_per_pc(self):
        mdp = MemoryDependencePredictor()
        mdp.train_violation(0x100)
        assert mdp.predict(0x200) is MemPrediction.MEM

    def test_false_dependence_trains_back_to_mem(self):
        mdp = MemoryDependencePredictor()
        mdp.train_violation(0x100)
        mdp.train_no_dependence(0x100)
        mdp.train_no_dependence(0x100)
        assert mdp.predict(0x100) is MemPrediction.MEM
        assert mdp.false_dependencies == 2

    def test_hysteresis_keeps_stf_after_one_miss(self):
        mdp = MemoryDependencePredictor()
        mdp.train_violation(0x100)
        mdp.train_violation(0x100)
        mdp.train_no_dependence(0x100)
        assert mdp.predict(0x100) is MemPrediction.STF

    def test_counter_saturates(self):
        mdp = MemoryDependencePredictor()
        for _ in range(10):
            mdp.train_violation(0x100)
        for _ in range(2):
            mdp.train_no_dependence(0x100)
        # From saturation (3), two decrements leave 1: back to MEM.
        assert mdp.predict(0x100) is MemPrediction.MEM
