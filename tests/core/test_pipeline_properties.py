"""Property-based tests of whole-pipeline invariants.

Random small programs are run under every scheme; regardless of policy,
the pipeline must commit the whole trace, keep counters consistent, and
never let a secure scheme observe more than the unsafe baseline.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import OpClass, SchemeKind
from repro.isa import Program
from tests.helpers import make_core

ARENA = 0x8000

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["li", "load", "alu", "store", "branch", "mispredict", "chase"]),
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=0, max_value=15),
    ),
    min_size=3,
    max_size=80,
)

ALL_SCHEMES = (
    SchemeKind.UNSAFE,
    SchemeKind.NDA,
    SchemeKind.STT,
    SchemeKind.NDA_RECON,
    SchemeKind.STT_RECON,
)


def build(ops):
    prog = Program()
    for i in range(16):
        prog.poke(ARENA + i * 8, ARENA + ((i * 7 + 5) % 16) * 8)
    for reg in range(1, 8):
        prog.li(reg, ARENA + (reg % 16) * 8)
    for kind, reg, slot in ops:
        if kind == "li":
            prog.li(reg, ARENA + slot * 8)
        elif kind == "load":
            prog.load(reg, base=((reg % 7) or 1))
        elif kind == "alu":
            prog.alu(reg, ((reg % 7) or 1))
        elif kind == "store":
            prog.store(reg, base=((slot % 7) or 1))
        elif kind == "branch":
            prog.branch(reg)
        elif kind == "mispredict":
            prog.branch(reg, mispredict=True)
        else:  # chase: guarantee a dereference pair
            prog.load(reg, base=((reg % 7) or 1))
            other = (reg % 7) + 1
            prog.load(other, base=reg)
        # Re-point wandering registers back into the arena.
        for r in range(1, 8):
            if not ARENA <= prog.regs[r] < ARENA + 16 * 8:
                prog.li(r, ARENA + ((prog.regs[r] + r) % 16) * 8)
    return prog


def run_all(ops):
    cores = {}
    for scheme in ALL_SCHEMES:
        core = make_core(build(ops), scheme)
        core.run()
        cores[scheme] = core
    return cores


class TestPipelineProperties:
    @given(ops=op_strategy)
    @settings(max_examples=40, deadline=None)
    def test_every_scheme_commits_everything(self, ops):
        cores = run_all(ops)
        lengths = {s: c.stats.committed_uops for s, c in cores.items()}
        assert len(set(lengths.values())) == 1
        for core in cores.values():
            assert core.done
            assert core.lsq.sb_depth == 0

    @given(ops=op_strategy)
    @settings(max_examples=40, deadline=None)
    def test_unsafe_is_never_slower(self, ops):
        cores = run_all(ops)
        unsafe_stats = cores[SchemeKind.UNSAFE].stats
        unsafe = unsafe_stats.cycles
        for scheme in ALL_SCHEMES[1:]:
            stats = cores[scheme].stats
            # Allow tiny slack: reveal-driven timing shifts can perturb
            # memory-order-violation penalties by a few cycles.  Each
            # violation the unsafe baseline suffers that a delaying
            # scheme avoids costs it a flush bubble plus a wasted
            # memory round-trip, so discount those before comparing.
            extra = unsafe_stats.mem_order_violations - stats.mem_order_violations
            slack = 30 + 100 * max(0, extra)
            assert stats.cycles >= unsafe - slack

    @given(ops=op_strategy)
    @settings(max_examples=40, deadline=None)
    def test_counter_consistency(self, ops):
        for scheme, core in run_all(ops).items():
            stats = core.stats
            trace = core.trace
            assert stats.committed_loads == sum(
                1 for u in trace if u.opclass is OpClass.LOAD
            )
            assert stats.committed_stores == sum(
                1 for u in trace if u.opclass is OpClass.STORE
            )
            assert stats.committed_branches == sum(
                1 for u in trace if u.opclass is OpClass.BRANCH
            )
            # Observations are a subset of loads; forwarded loads are not
            # observed.
            assert len(core.observations) <= stats.committed_loads
            assert stats.reveal_hits + stats.reveal_misses <= stats.committed_loads

    @given(ops=op_strategy)
    @settings(max_examples=30, deadline=None)
    def test_secure_schemes_observe_no_more_speculatively(self, ops):
        """No secure scheme speculatively observes an address the unsafe
        baseline would not (they only ever delay)."""
        cores = run_all(ops)
        unsafe_addrs = {
            obs.addr for obs in cores[SchemeKind.UNSAFE].observations
        }
        for scheme in (SchemeKind.NDA, SchemeKind.STT):
            spec = {
                obs.addr
                for obs in cores[scheme].observations
                if obs.speculative
            }
            assert spec <= unsafe_addrs

    @given(ops=op_strategy)
    @settings(max_examples=30, deadline=None)
    def test_recon_reveals_only_after_pairs(self, ops):
        core = run_all(ops)[SchemeKind.STT_RECON]
        if core.stats.load_pairs_detected == 0:
            assert core.stats.reveal_hits == 0

    @given(ops=op_strategy)
    @settings(max_examples=25, deadline=None)
    def test_hierarchy_invariants_after_run(self, ops):
        for core in run_all(ops).values():
            core.hierarchy.check_coherence_invariants()
