"""Unit tests for register renaming."""

import pytest

from repro.core import RegisterFile


class TestRegisterFile:
    def test_initial_identity_map_ready(self):
        rf = RegisterFile(arch_regs=4, phys_regs=8)
        result = rf.rename(srcs=(0, 3), dest=None)
        assert result.src_phys == (0, 3)
        assert all(rf.ready[p] for p in result.src_phys)

    def test_rename_allocates_fresh_dest(self):
        rf = RegisterFile(arch_regs=4, phys_regs=8)
        result = rf.rename(srcs=(), dest=1)
        assert result.dest_phys == 4  # first free
        assert result.freed_on_commit == 1  # the old mapping
        assert not rf.ready[4]

    def test_consumer_sees_latest_mapping(self):
        rf = RegisterFile(arch_regs=4, phys_regs=8)
        first = rf.rename(srcs=(), dest=1)
        second = rf.rename(srcs=(1,), dest=2)
        assert second.src_phys == (first.dest_phys,)

    def test_free_list_exhaustion_and_release(self):
        rf = RegisterFile(arch_regs=2, phys_regs=4)
        assert rf.can_rename(True)
        rf.rename(srcs=(), dest=0)
        rf.rename(srcs=(), dest=1)
        assert not rf.can_rename(True)
        assert rf.can_rename(False)  # dest-less ops never stall on regs
        rf.release(0)
        assert rf.can_rename(True)

    def test_broadcast_marks_ready_and_returns_waiters(self):
        rf = RegisterFile(arch_regs=2, phys_regs=4)
        result = rf.rename(srcs=(), dest=0)
        sentinel = object()
        rf.waiters.setdefault(result.dest_phys, []).append(sentinel)
        waiters = rf.broadcast(result.dest_phys, frozenset({7}))
        assert waiters == [sentinel]
        assert rf.ready[result.dest_phys]
        assert rf.taint[result.dest_phys] == frozenset({7})
        # Waiter list is consumed.
        assert rf.broadcast(result.dest_phys) == []

    def test_union_taint(self):
        rf = RegisterFile(arch_regs=2, phys_regs=4)
        a = rf.rename(srcs=(), dest=0).dest_phys
        b = rf.rename(srcs=(), dest=1).dest_phys
        rf.broadcast(a, frozenset({1}))
        rf.broadcast(b, frozenset({2}))
        assert rf.union_taint((a, b)) == frozenset({1, 2})
        assert rf.union_taint(()) == frozenset()

    def test_rejects_too_few_phys(self):
        with pytest.raises(ValueError):
            RegisterFile(arch_regs=8, phys_regs=8)

    def test_rename_clears_stale_taint(self):
        rf = RegisterFile(arch_regs=2, phys_regs=4)
        a = rf.rename(srcs=(), dest=0).dest_phys
        rf.broadcast(a, frozenset({9}))
        rf.release(a)
        # Reallocate the same physical register: taint must not leak over.
        rf.rename(srcs=(), dest=1)
        b = rf.rename(srcs=(), dest=0).dest_phys
        while b != a:  # drain until `a` comes back around
            rf.release(b)
            b = rf.rename(srcs=(), dest=0).dest_phys
        assert rf.taint[b] == frozenset()
