"""Deterministic driver for the pipeline-stats parity golden.

The hot-path optimization (``repro.core.fastcore``) must reproduce the
reference cycle loop (``repro.core.pipeline.Core``) *exactly*: the same
cycle count and the same :class:`~repro.common.stats.StatSet`,
field-for-field, on every cell below.  This module holds the stimulus
shared by

* ``scripts/capture_pipeline_golden.py`` — run once against the
  pre-optimization loop to produce
  ``tests/data/pipeline_stats_golden.json`` (checked in), and
* ``tests/core/test_hotpath_parity.py`` — re-runs the same cells on the
  selected backend and compares every stat field.

Nothing here may depend on wall-clock time, hashing order, or any other
non-determinism: the same code must produce the same record stream on
both sides of the optimization.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.types import SchemeKind
from repro.sim.config import RunConfig
from repro.sim.runner import TraceCache, run_benchmark
from repro.workloads import get_benchmark

__all__ = ["CELLS", "GOLDEN_PATH", "run_cells", "run_one"]

#: Repo-relative location of the checked-in golden file.
GOLDEN_PATH = "tests/data/pipeline_stats_golden.json"

#: (suite, bench, scheme, length, threads) cells covering every policy
#: family (taint gating, deferred broadcast, miss gating, invisible
#: speculation, SPT DIFT), single- and multi-core, with the default
#: 40% detailed warm-up in effect.
CELLS: List[Tuple[str, str, SchemeKind, int, int]] = [
    ("spec2017", "mcf", SchemeKind.UNSAFE, 6000, 1),
    ("spec2017", "mcf", SchemeKind.STT, 6000, 1),
    ("spec2017", "mcf", SchemeKind.STT_RECON, 6000, 1),
    ("spec2017", "mcf", SchemeKind.NDA, 6000, 1),
    ("spec2017", "mcf", SchemeKind.NDA_RECON, 6000, 1),
    ("spec2017", "mcf", SchemeKind.DOM, 4000, 1),
    ("spec2017", "mcf", SchemeKind.DOM_RECON, 4000, 1),
    ("spec2017", "mcf", SchemeKind.INVISPEC, 4000, 1),
    ("spec2017", "mcf", SchemeKind.INVISPEC_RECON, 4000, 1),
    ("spec2017", "gcc", SchemeKind.UNSAFE, 6000, 1),
    ("spec2017", "gcc", SchemeKind.STT_RECON, 6000, 1),
    ("spec2017", "gcc", SchemeKind.STT_SPT, 4000, 1),
    ("spec2017", "omnetpp", SchemeKind.NDA_RECON, 6000, 1),
    ("spec2017", "xalancbmk", SchemeKind.STT_RECON, 6000, 1),
    ("parsec", "canneal", SchemeKind.UNSAFE, 4000, 2),
    ("parsec", "canneal", SchemeKind.STT_RECON, 4000, 2),
    ("parsec", "streamcluster", SchemeKind.NDA_RECON, 4000, 4),
]


def cell_key(suite: str, bench: str, scheme: SchemeKind, length: int, threads: int) -> str:
    return f"{suite}/{bench}/{scheme.value}/len{length}/t{threads}"


def run_one(
    suite: str,
    bench: str,
    scheme: SchemeKind,
    length: int,
    threads: int,
    cache: TraceCache,
) -> Dict[str, object]:
    """Run one cell; returns its JSON-safe record (cycles + every stat)."""
    profile = get_benchmark(suite, bench)
    result = run_benchmark(
        profile,
        scheme,
        length,
        config=RunConfig(threads=threads, cache=cache),
    )
    return {
        "cycles": result.cycles,
        "stats": result.stats.as_dict(),
        "per_core": [s.as_dict() for s in result.per_core],
    }


def run_cells() -> Dict[str, Dict[str, object]]:
    """Run every golden cell; key -> record, in deterministic order."""
    cache = TraceCache()
    return {
        cell_key(*cell): run_one(*cell, cache=cache) for cell in CELLS
    }
