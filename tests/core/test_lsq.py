"""Unit tests for load/store queues and forwarding."""

import pytest

from repro.core import LoadStoreUnit


def make_lsq(lq=8, sq=4):
    return LoadStoreUnit(lq_entries=lq, sq_entries=sq)


class TestCapacity:
    def test_sq_full(self):
        lsq = make_lsq(sq=2)
        lsq.add_store(1, 0x100, 0x1000)
        assert not lsq.sq_full
        lsq.add_store(2, 0x104, 0x2000)
        assert lsq.sq_full

    def test_lq_full(self):
        lsq = make_lsq(lq=1)
        lsq.add_load(1, 0x100, 0x1000)
        assert lsq.lq_full


class TestForwarding:
    def test_no_forward_from_unresolved_store(self):
        lsq = make_lsq()
        lsq.add_store(1, 0x100, 0x1000)
        assert lsq.forwarding_store(2, 0x1000) is None

    def test_forward_from_resolved_matching_store(self):
        lsq = make_lsq()
        lsq.add_store(1, 0x100, 0x1000)
        lsq.resolve_store(1)
        lsq.set_store_data(1, frozenset({42}))
        match = lsq.forwarding_store(2, 0x1000)
        assert match is not None and match.seq == 1
        assert match.taint == frozenset({42})

    def test_forward_matches_word_not_byte(self):
        lsq = make_lsq()
        lsq.add_store(1, 0x100, 0x1000)
        lsq.resolve_store(1)
        lsq.set_store_data(1, frozenset())
        assert lsq.forwarding_store(2, 0x1004) is not None  # same word
        assert lsq.forwarding_store(2, 0x1008) is None  # next word

    def test_youngest_older_store_wins(self):
        lsq = make_lsq()
        lsq.add_store(1, 0x100, 0x1000)
        lsq.add_store(3, 0x104, 0x1000)
        lsq.resolve_store(1)
        lsq.set_store_data(1, frozenset())
        lsq.resolve_store(3)
        lsq.set_store_data(3, frozenset())
        match = lsq.forwarding_store(5, 0x1000)
        assert match is not None and match.seq == 3

    def test_only_older_stores_forward(self):
        lsq = make_lsq()
        lsq.add_store(5, 0x100, 0x1000)
        lsq.resolve_store(5)
        lsq.set_store_data(5, frozenset())
        assert lsq.forwarding_store(3, 0x1000) is None

    def test_forward_from_store_buffer(self):
        lsq = make_lsq()
        lsq.add_store(1, 0x100, 0x1000)
        lsq.resolve_store(1)
        lsq.set_store_data(1, frozenset())
        lsq.commit_store(1)
        match = lsq.forwarding_store(9, 0x1000)
        assert match is not None and match.committed

    def test_sq_match_beats_sb_match(self):
        lsq = make_lsq()
        lsq.add_store(1, 0x100, 0x1000)
        lsq.resolve_store(1)
        lsq.set_store_data(1, frozenset())
        lsq.commit_store(1)
        lsq.add_store(3, 0x104, 0x1000)
        lsq.resolve_store(3)
        lsq.set_store_data(3, frozenset())
        match = lsq.forwarding_store(5, 0x1000)
        assert match is not None and match.seq == 3


class TestOrdering:
    def test_has_older_unresolved(self):
        lsq = make_lsq()
        lsq.add_store(2, 0x100, 0x1000)
        assert lsq.has_older_unresolved_store(5)
        assert not lsq.has_older_unresolved_store(1)
        lsq.resolve_store(2)
        lsq.set_store_data(2, frozenset())
        assert not lsq.has_older_unresolved_store(5)

    def test_violation_detection(self):
        lsq = make_lsq()
        lsq.add_store(2, 0x100, 0x1000)
        load = lsq.add_load(5, 0x200, 0x1000)
        load.went_to_memory = True
        violated = lsq.resolve_store(2)
        lsq.set_store_data(2, frozenset())
        assert [entry.seq for entry in violated] == [5]

    def test_no_violation_for_older_load(self):
        lsq = make_lsq()
        load = lsq.add_load(1, 0x200, 0x1000)
        load.went_to_memory = True
        lsq.add_store(2, 0x100, 0x1000)
        assert lsq.resolve_store(2) == []

    def test_no_violation_for_different_word(self):
        lsq = make_lsq()
        lsq.add_store(2, 0x100, 0x1000)
        load = lsq.add_load(5, 0x200, 0x1008)
        load.went_to_memory = True
        assert lsq.resolve_store(2) == []

    def test_no_violation_for_waiting_load(self):
        lsq = make_lsq()
        lsq.add_store(2, 0x100, 0x1000)
        lsq.add_load(5, 0x200, 0x1000)  # never went to memory
        assert lsq.resolve_store(2) == []

    def test_data_readiness_tracked_separately(self):
        """Address resolution and data availability are independent."""
        lsq = make_lsq()
        lsq.add_store(1, 0x100, 0x1000)
        lsq.resolve_store(1)
        match = lsq.forwarding_store(2, 0x1000)
        assert match is not None and not match.data_ready
        lsq.set_store_data(1, frozenset({9}))
        assert match.data_ready and match.taint == frozenset({9})


class TestCommitDiscipline:
    def test_commit_store_must_be_head(self):
        lsq = make_lsq()
        lsq.add_store(1, 0x100, 0x1000)
        lsq.add_store(2, 0x104, 0x2000)
        with pytest.raises(ValueError):
            lsq.commit_store(2)

    def test_store_buffer_drain_order(self):
        lsq = make_lsq()
        for seq, addr in ((1, 0x1000), (2, 0x2000)):
            lsq.add_store(seq, 0x100, addr)
            lsq.resolve_store(seq)
            lsq.set_store_data(seq, frozenset())
            lsq.commit_store(seq)
        assert lsq.sb_depth == 2
        assert lsq.pop_performable_store().seq == 1
        assert lsq.pop_performable_store().seq == 2
        assert lsq.pop_performable_store() is None

    def test_commit_load_removes_entry(self):
        lsq = make_lsq()
        lsq.add_load(1, 0x100, 0x1000)
        lsq.commit_load(1)
        assert lsq.load_entry(1) is None

    def test_resolve_unknown_store_raises(self):
        lsq = make_lsq()
        with pytest.raises(KeyError):
            lsq.resolve_store(7)
        with pytest.raises(KeyError):
            lsq.set_store_data(7, frozenset())
