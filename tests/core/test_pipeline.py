"""Unit tests for the out-of-order pipeline under the unsafe baseline."""

import pytest

from repro.common import OpClass, SchemeKind
from repro.isa import Program
from tests.helpers import make_core, run_program, small_system_params


class TestBasicExecution:
    def test_empty_trace_finishes(self):
        core = run_program(Program())
        assert core.done
        assert core.stats.committed_uops == 0

    def test_all_uops_commit(self):
        prog = Program()
        for i in range(20):
            prog.li(i % 8, i)
        core = run_program(prog)
        assert core.stats.committed_uops == 20

    def test_independent_alus_superscalar(self):
        prog = Program()
        for i in range(64):
            prog.li(i % 8, i)
        core = run_program(prog)
        # 8-wide machine on independent ops: IPC well above 1.
        assert core.stats.ipc > 2.0

    def test_dependent_chain_is_serial(self):
        chain = Program()
        chain.li(1, 1)
        for _ in range(63):
            chain.alu(1, 1)
        serial = run_program(chain).stats.cycles

        wide = Program()
        for i in range(64):
            wide.li(i % 8, i)
        parallel = run_program(wide).stats.cycles
        assert serial > parallel * 2

    def test_div_latency_slower_than_alu(self):
        def build(opclass):
            prog = Program()
            prog.li(1, 5)
            for _ in range(20):
                prog.alu(1, 1, opclass=opclass)
            return prog

        alu_cycles = run_program(build(OpClass.ALU)).stats.cycles
        div_cycles = run_program(build(OpClass.DIV)).stats.cycles
        assert div_cycles > alu_cycles * 3

    def test_determinism(self):
        def build():
            prog = Program()
            prog.poke(0x1000, 0x2000)
            prog.li(1, 0x1000)
            for i in range(50):
                prog.load(2, base=1)
                prog.alu(3, 2)
                prog.branch(3, mispredict=(i % 7 == 0))
                prog.store(3, base=1, offset=0x100)
            return prog

        a = run_program(build(), SchemeKind.STT)
        b = run_program(build(), SchemeKind.STT)
        assert a.stats.cycles == b.stats.cycles
        assert a.stats.as_dict() == b.stats.as_dict()


class TestMemoryBehaviour:
    def test_load_miss_then_hit(self):
        prog = Program()
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        prog.load(3, base=1)
        core = run_program(prog)
        assert core.stats.l1_misses == 1
        assert core.stats.l1_hits == 1

    def test_mlp_overlaps_independent_misses(self):
        # Two independent miss streams should overlap almost entirely.
        one = Program()
        one.li(1, 0x10000)
        one.load(2, base=1)
        single = run_program(one).stats.cycles

        two = Program()
        two.li(1, 0x10000)
        two.li(2, 0x20000)
        two.load(3, base=1)
        two.load(4, base=2)
        double = run_program(two).stats.cycles
        assert double < single + 20

    def test_dependent_loads_serialize(self):
        prog = Program()
        prog.poke(0x10000, 0x20000)
        prog.li(1, 0x10000)
        prog.load(2, base=1)
        prog.load(3, base=2)
        dependent = run_program(prog).stats.cycles

        indep = Program()
        indep.li(1, 0x10000)
        indep.li(2, 0x20000)
        indep.load(3, base=1)
        indep.load(4, base=2)
        independent = run_program(indep).stats.cycles
        assert dependent > independent + 30

    def test_store_load_forwarding(self):
        from repro.common import MemPrediction

        prog = Program()
        prog.li(1, 0x1000)
        prog.li(2, 77)
        prog.store(2, base=1)
        # STF-predicted load: waits for the store address, then forwards.
        prog.load(3, base=1, forced_prediction=MemPrediction.STF)
        core = run_program(prog)
        assert core.stats.store_forwards >= 1

    def test_mem_predicted_load_past_unresolved_store_violates(self):
        prog = Program()
        prog.li(1, 0x1000)
        prog.li(2, 77)
        prog.store(2, base=1)
        prog.load(3, base=1)  # issues before the store resolves
        core = run_program(prog)
        assert core.mdp.violations == 1

    def test_stores_drain_and_conceal(self):
        prog = Program()
        prog.li(1, 0x1000)
        prog.li(2, 5)
        prog.store(2, base=1)
        core = run_program(prog)
        assert core.stats.committed_stores == 1
        assert core.stats.words_concealed == 1
        assert core.lsq.sb_depth == 0

    def test_observations_recorded_for_memory_loads(self):
        prog = Program()
        prog.li(1, 0x1000)
        prog.load(2, base=1)
        core = run_program(prog)
        assert len(core.observations) == 1
        assert core.observations[0].addr == 0x1000

    def test_forwarded_load_not_observed(self):
        from repro.common import MemPrediction

        prog = Program()
        prog.li(1, 0x1000)
        prog.li(2, 77)
        prog.store(2, base=1)
        prog.load(3, base=1, forced_prediction=MemPrediction.STF)
        core = run_program(prog)
        # The load forwarded from the SQ/SB: no cache access observable.
        loads_observed = [o for o in core.observations if o.addr == 0x1000]
        assert loads_observed == []

    def test_stf_trained_load_waits_and_forwards(self):
        """After a violation trains the predictor, the same pc forwards.

        Iterations are serialized by mispredicted branches so training from
        iteration 1 is in effect when iteration 2's load issues.
        """
        prog = Program()
        prog.li(1, 0x1000)
        prog.li(2, 77)
        store_pc, load_pc = 0x9000, 0x9004
        for _ in range(4):
            prog.store(2, base=1, pc=store_pc)
            prog.load(3, base=1, pc=load_pc)
            prog.alu(2, 3)
            prog.branch(2, mispredict=True)
        core = run_program(prog)
        assert core.mdp.violations >= 1
        assert core.stats.store_forwards >= 1


class TestControlFlow:
    def test_mispredict_costs_cycles(self):
        def build(mispredict):
            prog = Program()
            prog.li(1, 1)
            for _ in range(10):
                prog.branch(1, mispredict=mispredict)
                for i in range(4):
                    prog.li(2 + i, i)
            return prog

        good = run_program(build(False)).stats.cycles
        bad = run_program(build(True)).stats.cycles
        assert bad >= good + 10 * 10  # ~penalty per mispredict

    def test_branch_stats(self):
        prog = Program()
        prog.li(1, 1)
        prog.branch(1)
        prog.branch(1, mispredict=True)
        core = run_program(prog)
        assert core.stats.committed_branches == 2
        assert core.stats.mispredicted_branches == 1


class TestResourceLimits:
    def test_tiny_rob_still_correct(self):
        import dataclasses

        params = small_system_params()
        params = dataclasses.replace(
            params, core=dataclasses.replace(params.core, rob_entries=4)
        )
        prog = Program()
        for i in range(40):
            prog.li(i % 8, i)
        core = make_core(prog, SchemeKind.UNSAFE, params=params)
        core.run()
        assert core.stats.committed_uops == 40

    def test_phys_reg_pressure_still_correct(self):
        import dataclasses

        params = small_system_params()
        params = dataclasses.replace(
            params, core=dataclasses.replace(params.core, phys_regs=40)
        )
        prog = Program()
        for i in range(100):
            prog.li(i % 8, i)
        core = make_core(prog, SchemeKind.UNSAFE, params=params)
        core.run()
        assert core.stats.committed_uops == 100

    def test_run_raises_on_cycle_budget(self):
        prog = Program()
        prog.li(1, 0x100000)
        prog.load(2, base=1)
        core = make_core(prog)
        with pytest.raises(RuntimeError):
            core.run(max_cycles=3)
