"""Parity gate for the hot-path backends.

The optimized loop (:class:`repro.core.fastcore.FastCore`) merges only
if it is *bit-identical* to the reference loop on every stat: the
checked-in golden (captured from the pre-optimization pipeline), a
direct legacy-vs-vector A/B on fresh runs, and a hypothesis sweep over
randomized configurations all compare :class:`~repro.common.stats.StatSet`
field-for-field.  Backend selection (``REPRO_HOTPATH``) and the
vectorized kernels get unit coverage here too.
"""

import json
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import SchemeKind, StatSet, SystemParams
from repro.core.fastcore import FastCore
from repro.core.hotpath import (
    BACKENDS,
    HOTPATH_ENV,
    HAVE_COMPILED,
    core_class,
    count_unready,
    resolve_backend,
    sort_ready,
)
from repro.core.pipeline import Core
from repro.memory import MemoryHierarchy
from repro.security import make_policy
from repro.sim import RunConfig, System, TraceCache, run_benchmark
from repro.telemetry.events import TelemetryCollector, TelemetryConfig
from repro.workloads import build_trace, get_benchmark

from tests.core.hotpath_driver import CELLS, GOLDEN_PATH, cell_key, run_one


def _forced(profile, scheme, length, backend, cache, threads=1):
    """Run one cell with the backend pinned; restores the environment."""
    saved = os.environ.get(HOTPATH_ENV)
    os.environ[HOTPATH_ENV] = backend
    try:
        return run_benchmark(
            profile,
            scheme,
            length,
            config=RunConfig(threads=threads, cache=cache),
        )
    finally:
        if saved is None:
            os.environ.pop(HOTPATH_ENV, None)
        else:
            os.environ[HOTPATH_ENV] = saved


class TestGoldenParity:
    """The selected backend reproduces the pre-optimization golden."""

    def test_every_golden_cell_is_bit_identical(self):
        golden = json.load(open(GOLDEN_PATH))["runs"]
        cache = TraceCache()
        for cell in CELLS:
            key = cell_key(*cell)
            record = run_one(*cell, cache=cache)
            expected = golden[key]
            assert record["cycles"] == expected["cycles"], key
            assert record["stats"] == expected["stats"], key
            assert record["per_core"] == expected["per_core"], key


class TestBackendParity:
    """legacy and vector agree field-for-field on fresh runs."""

    @pytest.mark.parametrize(
        "scheme",
        [SchemeKind.UNSAFE, SchemeKind.STT_RECON, SchemeKind.DOM_RECON],
    )
    def test_legacy_vs_vector_single_core(self, scheme):
        profile = get_benchmark("spec2017", "mcf")
        cache = TraceCache()
        legacy = _forced(profile, scheme, 3000, "legacy", cache)
        vector = _forced(profile, scheme, 3000, "vector", cache)
        assert vector.cycles == legacy.cycles
        assert vector.stats.as_dict() == legacy.stats.as_dict()
        assert [s.as_dict() for s in vector.per_core] == [
            s.as_dict() for s in legacy.per_core
        ]

    def test_legacy_vs_vector_multicore(self):
        profile = get_benchmark("parsec", "canneal")
        cache = TraceCache()
        legacy = _forced(
            profile, SchemeKind.STT_RECON, 2400, "legacy", cache, threads=2
        )
        vector = _forced(
            profile, SchemeKind.STT_RECON, 2400, "vector", cache, threads=2
        )
        assert vector.cycles == legacy.cycles
        assert vector.stats.as_dict() == legacy.stats.as_dict()

    @settings(max_examples=8, deadline=None)
    @given(
        bench=st.sampled_from(["mcf", "gcc", "omnetpp", "xalancbmk"]),
        scheme=st.sampled_from(
            [
                SchemeKind.UNSAFE,
                SchemeKind.STT,
                SchemeKind.STT_RECON,
                SchemeKind.NDA_RECON,
                SchemeKind.DOM_RECON,
                SchemeKind.INVISPEC,
            ]
        ),
        length=st.integers(min_value=400, max_value=1600),
    )
    def test_randomized_config_parity(self, bench, scheme, length):
        profile = get_benchmark("spec2017", bench)
        cache = TraceCache()
        legacy = _forced(profile, scheme, length, "legacy", cache)
        vector = _forced(profile, scheme, length, "vector", cache)
        assert vector.cycles == legacy.cycles
        assert vector.stats.as_dict() == legacy.stats.as_dict()


class TestBackendSelection:
    def test_unknown_backend_is_value_error(self):
        with pytest.raises(ValueError, match="unknown hot-path backend"):
            resolve_backend("turbo")

    def test_legacy_selects_reference_core(self):
        assert core_class("legacy") is Core

    def test_vector_selects_fastcore(self):
        assert core_class("vector") is FastCore

    def test_auto_prefers_compiled_when_built(self):
        resolved = resolve_backend("auto")
        assert resolved == ("compiled" if HAVE_COMPILED else "vector")

    @pytest.mark.skipif(HAVE_COMPILED, reason="compiled kernel is built here")
    def test_compiled_without_build_warns_and_falls_back(self):
        with pytest.warns(RuntimeWarning, match="no compiled kernel"):
            assert resolve_backend("compiled") == "vector"

    def test_env_variable_drives_selection(self, monkeypatch):
        monkeypatch.setenv(HOTPATH_ENV, "legacy")
        assert core_class() is Core
        monkeypatch.setenv(HOTPATH_ENV, "vector")
        assert core_class() is FastCore

    def test_backends_list_is_exhaustive(self):
        assert set(BACKENDS) == {"auto", "vector", "legacy", "compiled"}


class TestTelemetryGuard:
    """Traced runs must use the reference loop, never FastCore."""

    def test_fastcore_refuses_telemetry(self):
        profile = get_benchmark("spec2017", "gcc")
        trace = build_trace(profile, 300).trace()
        params = SystemParams()
        stats = StatSet()
        with pytest.raises(ValueError, match="no telemetry"):
            FastCore(
                0,
                params,
                list(trace),
                MemoryHierarchy(params),
                make_policy(SchemeKind.UNSAFE, stats),
                stats,
                telemetry=TelemetryCollector(TelemetryConfig()),
            )

    def test_system_with_telemetry_uses_reference_core(self):
        profile = get_benchmark("spec2017", "gcc")
        traces = [build_trace(profile, 300).trace()]
        system = System(
            SystemParams(), traces, SchemeKind.UNSAFE,
            telemetry=TelemetryConfig(),
        )
        assert all(type(core) is Core for core in system.cores)

    def test_system_without_telemetry_uses_fast_backend(self, monkeypatch):
        monkeypatch.setenv(HOTPATH_ENV, "vector")
        profile = get_benchmark("spec2017", "gcc")
        traces = [build_trace(profile, 300).trace()]
        system = System(SystemParams(), traces, SchemeKind.UNSAFE)
        assert all(type(core) is FastCore for core in system.cores)


class _FakeInst:
    __slots__ = ("seq",)

    def __init__(self, seq):
        self.seq = seq


class TestVectorKernels:
    """The numpy kernels match their naive counterparts at every size."""

    @pytest.mark.parametrize("n", [0, 1, 5, 63, 64, 65, 300])
    def test_sort_ready_matches_sorted(self, n):
        rng = random.Random(n)
        seqs = list(range(n))
        rng.shuffle(seqs)
        insts = [_FakeInst(seq) for seq in seqs]
        result = sort_ready(list(insts))
        assert [inst.seq for inst in result] == sorted(seqs)

    @pytest.mark.parametrize("n_phys", [0, 1, 3, 15, 16, 40])
    def test_count_unready_matches_naive(self, n_phys):
        rng = random.Random(n_phys)
        ready = [rng.random() < 0.5 for _ in range(64)]
        phys = [rng.randrange(64) for _ in range(n_phys)]
        naive = sum(1 for reg in phys if not ready[reg])
        assert count_unready(ready, phys) == naive
