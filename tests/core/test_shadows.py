"""Unit tests for speculation-shadow tracking."""

from repro.core import NO_SHADOW, ShadowTracker


class TestShadowTracker:
    def test_empty_tracker_nothing_speculative(self):
        tracker = ShadowTracker()
        assert tracker.frontier == NO_SHADOW
        assert not tracker.is_speculative(0)
        assert not tracker.is_speculative(10**9)

    def test_caster_covers_younger_only(self):
        tracker = ShadowTracker()
        tracker.cast(5)
        assert not tracker.is_speculative(3)
        assert not tracker.is_speculative(5)  # the caster itself
        assert tracker.is_speculative(6)

    def test_resolution_advances_frontier(self):
        tracker = ShadowTracker()
        tracker.cast(5)
        tracker.cast(9)
        assert tracker.frontier == 5
        tracker.resolve(5)
        assert tracker.frontier == 9
        tracker.resolve(9)
        assert tracker.frontier == NO_SHADOW

    def test_out_of_order_resolution(self):
        tracker = ShadowTracker()
        tracker.cast(5)
        tracker.cast(9)
        tracker.resolve(9)  # younger resolves first
        assert tracker.frontier == 5
        assert tracker.is_speculative(7)
        tracker.resolve(5)
        assert tracker.frontier == NO_SHADOW

    def test_resolve_is_idempotent(self):
        tracker = ShadowTracker()
        tracker.cast(5)
        tracker.resolve(5)
        tracker.resolve(5)
        assert tracker.frontier == NO_SHADOW

    def test_len_counts_unresolved(self):
        tracker = ShadowTracker()
        tracker.cast(1)
        tracker.cast(2)
        assert len(tracker) == 2
        tracker.resolve(1)
        assert len(tracker) == 1
