"""Unit tests for the telemetry event bus and collector."""

import pickle

import pytest

from repro.telemetry import (
    ALL_CATEGORIES,
    CAT_CACHE,
    CAT_PIPELINE,
    NULL_TELEMETRY,
    Event,
    TelemetryCollector,
    TelemetryConfig,
    parse_filter,
)


class TestParseFilter:
    def test_none_means_no_filtering(self):
        assert parse_filter(None) is None

    def test_empty_means_no_filtering(self):
        assert parse_filter("") is None
        assert parse_filter("  ,  ") is None

    def test_all_means_no_filtering(self):
        assert parse_filter("all") is None

    def test_comma_list(self):
        assert parse_filter("cache, recon") == frozenset({"cache", "recon"})

    def test_unknown_category_fails_loudly(self):
        with pytest.raises(ValueError, match="bogus"):
            parse_filter("cache,bogus")


class TestTelemetryConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.sample_rate == 1
        assert config.categories is None
        assert config.ring_buffer > 0
        assert config.timeline_interval is None

    def test_is_hashable(self):
        # RunConfig/RunSpec are frozen dataclasses, so the telemetry
        # config they embed must hash.
        assert hash(TelemetryConfig(categories=frozenset({"cache"})))

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            TelemetryConfig(sample_rate=0)
        with pytest.raises(ValueError):
            TelemetryConfig(ring_buffer=0)
        with pytest.raises(ValueError):
            TelemetryConfig(timeline_interval=0)
        with pytest.raises(ValueError):
            TelemetryConfig(categories=frozenset({"bogus"}))


class TestNullTelemetry:
    def test_disabled_and_inert(self):
        assert NULL_TELEMETRY.enabled is False
        # A site that forgets the ``enabled`` guard must stay correct.
        NULL_TELEMETRY.emit(CAT_CACHE, "l1_hit", core=0)
        NULL_TELEMETRY.observe("load_latency", 3)


class TestEvent:
    def test_as_dict_drops_uop(self):
        event = Event(5, CAT_PIPELINE, "commit", core=1, seq=7, uop=object())
        d = event.as_dict()
        assert "uop" not in d
        assert d["cycle"] == 5 and d["seq"] == 7

    def test_pickle_strips_uop(self):
        sentinel = object()  # unpicklable payloads must not leak through
        event = Event(5, CAT_PIPELINE, "commit", seq=7, uop=sentinel)
        clone = pickle.loads(pickle.dumps(event))
        assert clone.uop is None
        assert clone.cycle == 5
        assert clone.kind == "commit"
        assert clone.seq == 7


class TestTelemetryCollector:
    def test_emit_stamps_current_cycle(self):
        collector = TelemetryCollector()
        collector.now = 42
        collector.emit(CAT_CACHE, "l1_hit")
        assert collector.events[0].cycle == 42

    def test_category_filter_skips_everything(self):
        collector = TelemetryCollector(
            TelemetryConfig(categories=frozenset({CAT_CACHE}))
        )
        collector.emit(CAT_PIPELINE, "commit")
        collector.emit(CAT_CACHE, "l1_hit")
        assert [e.category for e in collector.events] == [CAT_CACHE]
        assert collector.emitted_events == 1

    def test_ring_buffer_drops_oldest(self):
        collector = TelemetryCollector(TelemetryConfig(ring_buffer=3))
        for seq in range(5):
            collector.emit(CAT_CACHE, "l1_hit", seq=seq)
        assert [e.seq for e in collector.events] == [2, 3, 4]
        assert collector.dropped_events == 2
        assert collector.emitted_events == 5

    def test_sampling_keeps_every_nth(self):
        collector = TelemetryCollector(TelemetryConfig(sample_rate=3))
        for seq in range(9):
            collector.emit(CAT_CACHE, "l1_hit", seq=seq)
        assert [e.seq for e in collector.events] == [2, 5, 8]
        assert collector.emitted_events == 9

    def test_sinks_see_every_event_before_sampling(self):
        seen = []

        class Sink:
            def on_event(self, event):
                seen.append(event.seq)

        collector = TelemetryCollector(
            TelemetryConfig(sample_rate=4, ring_buffer=2)
        )
        collector.add_sink(Sink())
        for seq in range(8):
            collector.emit(CAT_CACHE, "l1_hit", seq=seq)
        assert seen == list(range(8))
        assert len(collector.events) == 2

    def test_finalize_strips_uops_and_snapshots(self):
        collector = TelemetryCollector()
        collector.emit(CAT_PIPELINE, "commit", seq=1, uop=object())
        result = collector.finalize()
        assert result.events[0].uop is None
        assert result.emitted_events == 1
        assert result.dropped_events == 0
        assert "counters" in result.metrics

    def test_finalize_backfills_stats(self):
        from repro.common import StatSet

        stats = StatSet()
        stats.l1_hits = 17
        collector = TelemetryCollector()
        result = collector.finalize(stats)
        assert result.metrics["counters"]["l1_hits"] == 17

    def test_all_categories_cover_constants(self):
        from repro.telemetry.events import CAT_FAULT, CAT_MEM_TXN

        assert CAT_PIPELINE in ALL_CATEGORIES
        assert CAT_CACHE in ALL_CATEGORIES
        assert CAT_MEM_TXN in ALL_CATEGORIES
        assert CAT_FAULT in ALL_CATEGORIES
        from repro.telemetry.events import CAT_BACKEND, CAT_REDTEAM

        assert CAT_REDTEAM in ALL_CATEGORIES
        assert CAT_BACKEND in ALL_CATEGORIES
        assert len(ALL_CATEGORIES) == 10
