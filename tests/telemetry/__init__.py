"""Tests for the telemetry subsystem (events, metrics, exporters)."""
