"""Unit tests for the metrics registry instruments."""

import pytest

from repro.common import StatSet
from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.metrics import DEFAULT_HISTOGRAMS


class TestCounter:
    def test_inc_and_set(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.set(2)
        assert counter.value == 2


class TestGauge:
    def test_tracks_extremes(self):
        gauge = Gauge("x")
        for value in (5.0, 2.0, 9.0):
            gauge.set(value)
        assert gauge.value == 9.0
        assert gauge.min == 2.0
        assert gauge.max == 9.0

    def test_first_sample_sets_both_extremes(self):
        gauge = Gauge("x")
        gauge.set(-3.0)
        assert gauge.min == gauge.max == -3.0


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("x", [1.0, 2.0, 4.0])
        for value in (0, 1, 2, 3, 100):
            hist.observe(value)
        # counts: <=1 (0,1), <=2 (2), <=4 (3), overflow (100)
        assert hist.counts == [2, 1, 1, 1]
        assert hist.total == 5
        assert hist.sum == 106.0

    def test_mean(self):
        hist = Histogram("x", [10.0])
        assert hist.mean == 0.0
        hist.observe(2)
        hist.observe(4)
        assert hist.mean == 3.0

    def test_quantile(self):
        hist = Histogram("x", [1.0, 2.0, 4.0, 8.0])
        for value in (1, 1, 2, 4, 8):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.0 or hist.quantile(0.0) >= 0
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(1.0) == 8.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", [])
        with pytest.raises(ValueError):
            Histogram("x", [2.0, 1.0])

    def test_as_dict_round_trip(self):
        hist = Histogram("x", [1.0])
        hist.observe(0.5)
        d = hist.as_dict()
        assert d["bounds"] == [1.0]
        assert d["counts"] == [1, 0]
        assert d["total"] == 1
        assert d["mean"] == 0.5


class TestMetricsRegistry:
    def test_lazy_creation_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")

    def test_default_histograms_preseeded(self):
        registry = MetricsRegistry.with_default_instruments()
        for name in DEFAULT_HISTOGRAMS:
            assert name in registry.histograms

    def test_unknown_histogram_needs_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError):
            registry.histogram("custom")
        assert registry.histogram("custom", [1.0]).bounds == (1.0,)

    def test_backfill_covers_every_stat_field(self):
        import dataclasses

        stats = StatSet()
        stats.cycles = 100
        stats.reveal_hits = 3
        registry = MetricsRegistry()
        registry.backfill_statset(stats)
        for field in dataclasses.fields(StatSet):
            assert registry.counter(field.name).value == getattr(
                stats, field.name
            )

    def test_as_dict_shape(self):
        registry = MetricsRegistry.with_default_instruments()
        registry.counter("c").inc()
        registry.gauge("g").set(1.0)
        d = registry.as_dict()
        assert d["counters"] == {"c": 1}
        assert d["gauges"]["g"] == {"value": 1.0, "min": 1.0, "max": 1.0}
        assert set(d["histograms"]) == set(DEFAULT_HISTOGRAMS)
