"""Unit tests for the telemetry exporters."""

import json

import pytest

from repro.analysis import LeakageTimeline
from repro.telemetry import (
    CAT_CACHE,
    CAT_PIPELINE,
    CAT_SECURITY,
    Event,
    MetricsRegistry,
    leakage_csv,
    metrics_to_json,
    to_chrome_trace,
    to_konata,
    trace_summary_rows,
    validate_chrome_trace,
)


def _pipeline_events():
    """A two-uop window: uop 1 commits, uop 2 squashes."""
    return [
        Event(10, CAT_PIPELINE, "dispatch", core=0, seq=1, addr=0x400),
        Event(11, CAT_PIPELINE, "issue", core=0, seq=1),
        Event(12, CAT_PIPELINE, "dispatch", core=0, seq=2, addr=0x404),
        Event(14, CAT_PIPELINE, "complete", core=0, seq=1),
        Event(15, CAT_PIPELINE, "commit", core=0, seq=1),
        Event(16, CAT_PIPELINE, "squash", core=0, seq=2),
    ]


class TestChromeTrace:
    def test_payload_validates_and_round_trips_json(self):
        payload = to_chrome_trace(_pipeline_events(), pid=3, label="mcf/stt")
        validate_chrome_trace(payload)
        clone = json.loads(json.dumps(payload))
        validate_chrome_trace(clone)
        # One metadata record plus one entry per event.
        assert len(payload["traceEvents"]) == 7
        meta = payload["traceEvents"][0]
        assert meta["ph"] == "M"
        assert meta["args"]["name"] == "mcf/stt"
        assert all(e["pid"] == 3 for e in payload["traceEvents"])

    def test_delay_end_becomes_duration(self):
        event = Event(50, CAT_SECURITY, "delay_end", seq=4, value=12)
        payload = to_chrome_trace([event])
        entry = payload["traceEvents"][0]
        assert entry["ph"] == "X"
        assert entry["ts"] == 38  # cycle - duration
        assert entry["dur"] == 12
        validate_chrome_trace(payload)

    def test_instants_carry_scope(self):
        payload = to_chrome_trace([Event(5, CAT_CACHE, "l1_hit")])
        entry = payload["traceEvents"][0]
        assert entry["ph"] == "i"
        assert entry["s"] == "t"
        assert entry["ts"] == 5

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "Z", "pid": 0, "tid": 0}]}
            )
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"name": "x", "ph": "i", "pid": 0, "tid": 0, "ts": -1}
                    ]
                }
            )


class TestKonata:
    def test_header_and_stage_flow(self):
        text = to_konata(_pipeline_events())
        lines = text.splitlines()
        assert lines[0] == "Kanata\t0004"
        assert lines[1] == "C=\t10"
        # uop 1 (uid 0): inserted, labelled, staged through Ds/Is/Ex,
        # retired with flag 0; uop 2 (uid 1) flushed with flag 1.
        assert "I\t0\t1\t0" in lines
        assert any(l.startswith("L\t0\t0\t#1 core0 pc=0x400") for l in lines)
        assert "S\t0\t0\tDs" in lines
        assert "S\t0\t0\tIs" in lines
        assert "S\t0\t0\tEx" in lines
        assert "R\t0\t0\t0" in lines
        assert "R\t1\t1\t1" in lines

    def test_orphan_events_skipped(self):
        # Issue/commit for a uop whose dispatch fell out of the ring
        # buffer must not crash the renderer.
        text = to_konata(
            [
                Event(5, CAT_PIPELINE, "issue", seq=9),
                Event(6, CAT_PIPELINE, "commit", seq=9),
            ]
        )
        assert text == "Kanata\t0004\n"

    def test_non_pipeline_events_ignored(self):
        text = to_konata([Event(5, CAT_CACHE, "l1_hit", seq=1)])
        assert text == "Kanata\t0004\n"


class TestLeakageCsv:
    def test_rows(self):
        timeline = LeakageTimeline(interval=5, samples=((5, 2, 1), (10, 0, 0)))
        assert leakage_csv(timeline) == (
            "uops,dift_leaked_words,pair_leaked_words\n5,2,1\n10,0,0\n"
        )

    def test_empty_timeline_has_header_only(self):
        timeline = LeakageTimeline(interval=5, samples=())
        assert leakage_csv(timeline) == (
            "uops,dift_leaked_words,pair_leaked_words\n"
        )


class TestMetricsJson:
    def test_accepts_registry_and_dict(self):
        registry = MetricsRegistry()
        registry.counter("hits").set(4)
        text = metrics_to_json(registry)
        assert json.loads(text)["counters"]["hits"] == 4
        assert json.loads(metrics_to_json({"a": 1})) == {"a": 1}


class TestTraceSummary:
    def test_rows_sorted_by_count(self):
        payload = to_chrome_trace(
            _pipeline_events() + [Event(20, CAT_CACHE, "l1_hit")],
            label="x",
        )
        rows = trace_summary_rows(payload)
        counts = [int(row[2]) for row in rows]
        assert counts == sorted(counts, reverse=True)
        assert ["pipeline", "dispatch", "2", "10", "12"] in rows
        # Metadata records are not event rows.
        assert not any(row[1] == "process_name" for row in rows)
