"""End-to-end telemetry acceptance tests.

The acceptance invariants of the subsystem: a telemetry-disabled run is
bit-identical to the seed behaviour, a traced run changes no simulated
outcome, exported metric counters equal the authoritative StatSet, and
traced specs bypass the persistent result store.
"""

import dataclasses

from repro.common import SchemeKind, StatSet
from repro.sim import RunConfig, run_benchmark
from repro.sim.engine import RunSpec, execute_specs
from repro.sim.store import ResultStore, result_from_dict, result_to_dict
from repro.telemetry import (
    TelemetryConfig,
    to_chrome_trace,
    to_konata,
    validate_chrome_trace,
)
from repro.workloads import get_benchmark

LENGTH = 1500


def _run(scheme=SchemeKind.STT_RECON, telemetry=None):
    profile = get_benchmark("spec2017", "mcf")
    return run_benchmark(
        profile, scheme, LENGTH, config=RunConfig(telemetry=telemetry)
    )


class TestTracingChangesNothing:
    def test_stats_bit_identical_with_and_without_tracing(self):
        plain = _run()
        traced = _run(telemetry=TelemetryConfig())
        assert plain.telemetry is None
        assert traced.telemetry is not None
        assert plain.cycles == traced.cycles
        assert plain.stats.as_dict() == traced.stats.as_dict()

    def test_category_filter_changes_nothing(self):
        plain = _run()
        filtered = _run(
            telemetry=TelemetryConfig(categories=frozenset({"recon"}))
        )
        assert plain.stats.as_dict() == filtered.stats.as_dict()
        assert all(
            e.category == "recon" for e in filtered.telemetry.events
        )


class TestMetricsMatchStats:
    def test_exported_counters_equal_statset(self):
        result = _run(telemetry=TelemetryConfig())
        counters = result.telemetry.metrics["counters"]
        for field in dataclasses.fields(StatSet):
            assert counters[field.name] == getattr(
                result.stats, field.name
            ), field.name

    def test_histograms_populated_for_delaying_scheme(self):
        result = _run(SchemeKind.STT, telemetry=TelemetryConfig())
        histograms = result.telemetry.metrics["histograms"]
        assert histograms["load_latency"]["total"] > 0
        if result.stats.delay_cycles:
            assert histograms["delay_cycles"]["total"] > 0


class TestExportersOnRealRuns:
    def test_chrome_trace_from_real_run_validates(self):
        result = _run(telemetry=TelemetryConfig())
        payload = to_chrome_trace(result.telemetry.events, label="mcf")
        validate_chrome_trace(payload)
        assert len(payload["traceEvents"]) > 100

    def test_konata_from_real_run_has_retires(self):
        result = _run(telemetry=TelemetryConfig())
        text = to_konata(result.telemetry.events)
        assert text.startswith("Kanata\t0004\n")
        assert "\tR\t" in text or "\nR\t" in text


class TestStoreInteraction:
    def test_traced_specs_bypass_the_store(self, tmp_path):
        config = RunConfig(telemetry=TelemetryConfig())
        profile = get_benchmark("spec2017", "gcc")
        spec = RunSpec.build(profile, SchemeKind.UNSAFE, 700, config)
        store = ResultStore(tmp_path)
        results, records = execute_specs([spec], config=config, store=store)
        assert results[0].telemetry is not None
        assert not records[0].from_store
        assert len(store) == 0  # nothing persisted
        # Running again still simulates (and still carries telemetry).
        again, records = execute_specs([spec], config=config, store=store)
        assert not records[0].from_store
        assert again[0].telemetry is not None

    def test_serialization_keeps_metrics_drops_events(self):
        result = _run(telemetry=TelemetryConfig())
        restored = result_from_dict(result_to_dict(result))
        assert restored.telemetry is not None
        assert restored.telemetry.events == []
        assert (
            restored.telemetry.metrics["counters"]
            == result.telemetry.metrics["counters"]
        )
