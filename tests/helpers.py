"""Shared factories for pipeline-level tests."""

from __future__ import annotations

from typing import Optional

from repro.common import (
    CacheParams,
    CoreParams,
    MemoryParams,
    SchemeKind,
    StatSet,
    SystemParams,
)
from repro.core import Core
from repro.isa import Program
from repro.memory import MemoryHierarchy
from repro.security import make_policy

__all__ = ["small_system_params", "make_core", "run_program"]


def small_system_params(num_cores: int = 1, **overrides) -> SystemParams:
    """System with tiny caches so tests can provoke misses and evictions."""
    memory = MemoryParams(
        l1=CacheParams(size_bytes=16 * 64, ways=2, latency=2),
        l2=CacheParams(size_bytes=64 * 64, ways=4, latency=6),
        llc=CacheParams(size_bytes=256 * 64, ways=4, latency=16),
        dram_latency=60,
        noc_hop_latency=2,
    )
    return SystemParams(
        core=CoreParams(),
        memory=memory,
        num_cores=num_cores,
        **overrides,
    )


def make_core(
    program: Program,
    scheme: SchemeKind = SchemeKind.UNSAFE,
    params: Optional[SystemParams] = None,
    hierarchy: Optional[MemoryHierarchy] = None,
    core_id: int = 0,
) -> Core:
    if params is None:
        params = small_system_params()
    if hierarchy is None:
        hierarchy = MemoryHierarchy(params)
    stats = StatSet()
    policy = make_policy(scheme, stats)
    return Core(core_id, params, program.trace(), hierarchy, policy, stats)


def run_program(program: Program, scheme: SchemeKind = SchemeKind.UNSAFE, **kw):
    """Run a program to completion; returns the finished Core."""
    core = make_core(program, scheme, **kw)
    core.run()
    return core
