"""The second-order metadata audit: protection metadata must be a
secret-independent signal (AUC ~ 0.5) for every protected scheme, and
the classifier itself must be able to find a real channel (the unsafe
positive control)."""

import pytest

from repro.common.types import SchemeKind
from repro.redteam import (
    PROTECTED_SCHEMES,
    audit_all,
    audit_scheme,
    control_audit,
    mann_whitney_auc,
)


class TestMannWhitneyAuc:
    def test_perfect_separation(self):
        assert mann_whitney_auc([1, 2, 3], [4, 5, 6]) == 1.0
        assert mann_whitney_auc([4, 5, 6], [1, 2, 3]) == 0.0

    def test_identical_samples_are_exactly_half(self):
        assert mann_whitney_auc([7, 7, 7], [7, 7, 7]) == 0.5

    def test_midrank_tie_handling(self):
        # ys: one above, one equal, one below -> (1 + 0.5) / 3
        assert mann_whitney_auc([2.0], [1.0, 2.0, 3.0]) == pytest.approx(
            0.5
        )

    def test_interleaved_is_near_half(self):
        auc = mann_whitney_auc([1, 3, 5, 7], [2, 4, 6, 8])
        assert 0.4 <= auc <= 0.7

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_auc([], [1.0])


class TestProtectedSchemeAudit:
    @pytest.mark.parametrize(
        "scheme", PROTECTED_SCHEMES, ids=lambda scheme: scheme.value
    )
    def test_metadata_auc_stays_in_band(self, scheme):
        """The acceptance criterion: AUC in [0.4, 0.6] per scheme."""
        audit = audit_scheme(scheme, trials=3)
        assert audit.ok, (
            f"{scheme.value} metadata leaks the secret: "
            f"{audit.worst_feature} AUC={audit.worst_auc:.3f}"
        )
        assert 0.4 <= audit.worst_auc <= 0.6
        assert audit.feature_aucs  # the audit actually scored something

    def test_matched_pairs_make_auc_exactly_half(self):
        """Same noise seed + secret-independent metadata means the two
        classes are identical sample-by-sample, so the AUC is not just
        in band but exactly 0.5."""
        audit = audit_scheme(SchemeKind.STT_RECON, trials=3)
        assert all(
            auc == pytest.approx(0.5)
            for auc in audit.feature_aucs.values()
        )

    def test_audit_all_covers_every_protected_scheme(self):
        results = audit_all(trials=2)
        assert [r.scheme for r in results] == list(PROTECTED_SCHEMES)
        assert all(r.ok for r in results)

    def test_untunable_gadget_rejected(self):
        with pytest.raises(ValueError, match="tunable"):
            audit_scheme(SchemeKind.NDA, "indirect_chain", trials=2)

    def test_too_few_trials_rejected(self):
        with pytest.raises(ValueError, match="trials"):
            audit_scheme(SchemeKind.NDA, trials=1)


class TestControlAudit:
    def test_control_detects_the_planted_channel(self):
        """The unsafe baseline with timing features must NOT be in band
        — otherwise an in-band audit result is meaningless."""
        control = control_audit(trials=3)
        assert not control.ok
        assert abs(control.worst_auc - 0.5) >= 0.4
        # The channel shows up in cache/timing behaviour.
        assert control.worst_feature in (
            "cycles",
            "l1_hits",
            "l1_misses",
            "l2_misses",
            "llc_misses",
        )

    def test_result_serializes(self):
        control = control_audit(trials=2)
        payload = control.as_dict()
        assert payload["scheme"] == "unsafe"
        assert payload["ok"] is False
        assert set(payload["feature_aucs"]) == set(control.feature_aucs)


class TestHotpathCompatibility:
    def test_audit_runs_under_vector_hotpath(self, monkeypatch, capsys):
        """Satellite fix: with REPRO_HOTPATH=vector the audit still runs
        on the reference core and prints one explanatory line instead of
        a traceback."""
        monkeypatch.setenv("REPRO_HOTPATH", "vector")
        audit = audit_scheme(SchemeKind.NDA, trials=2)
        assert audit.ok
        err = capsys.readouterr().err
        assert "REPRO_HOTPATH=vector" in err
        assert "reference" in err
