"""The gadget x scheme verdict matrix, asserted cell by cell.

This is the PR's acceptance gate in executable form:

* the unsafe baseline transmits every gadget's payload speculatively;
* NDA and STT leak nothing (and never even transmit speculatively on a
  cold line);
* NDA+ReCon / STT+ReCon transmit *already-public* pointers (benign, by
  Clueless DIFT over the architectural prefix) while still leaking no
  never-revealed secret;
* DoM transmits nothing on the cold-line transmitters.

The full matrix runs once per session (it is ~1 s of simulation) and
every test asserts against the shared result.
"""

import json

import pytest

from repro.common.types import SchemeKind
from repro.redteam import hotpath_note, run_matrix
from repro.redteam.harness import CellOutcome
from repro.workloads.gadgets import CATALOG, MATRIX_SCHEMES, Verdict


@pytest.fixture(scope="module")
def matrix():
    return run_matrix()


class TestVerdictMatrix:
    def test_every_cell_matches_the_catalog(self, matrix):
        assert not matrix.failed_cells
        for cell in matrix.cells:
            assert cell.verdict is cell.expected, (
                f"{cell.gadget}/{cell.scheme.value}: expected "
                f"{cell.expected.value}, got {cell.verdict.value}"
            )
        assert matrix.ok
        assert len(matrix.cells) == len(CATALOG) * len(MATRIX_SCHEMES)

    def test_unsafe_transmits_every_gadget(self, matrix):
        for case in CATALOG:
            cell = matrix.cell(case.name, SchemeKind.UNSAFE)
            assert cell.transmitted, case.name
            assert cell.observed_speculative, case.name

    def test_nda_and_stt_never_leak(self, matrix):
        for case in CATALOG:
            for scheme in (SchemeKind.NDA, SchemeKind.STT):
                cell = matrix.cell(case.name, scheme)
                assert cell.verdict is Verdict.PROTECTED, (case.name, scheme)
                assert not cell.transmitted, (case.name, scheme)

    def test_recon_lifts_only_for_public_words(self, matrix):
        """ReCon's whole point: transmit revealed pointers, nothing else."""
        for case in CATALOG:
            for scheme in (SchemeKind.NDA_RECON, SchemeKind.STT_RECON):
                cell = matrix.cell(case.name, scheme)
                assert cell.verdict is not Verdict.LEAK, (case.name, scheme)
                if cell.transmitted:
                    # Anything transmitted must be architecturally public.
                    assert cell.secret_arch_leaked, (case.name, scheme)
                    assert cell.reveal_hits > 0, (case.name, scheme)

    def test_recon_benign_cells_exist(self, matrix):
        """The lift is real, not vacuous: the reveal gadgets transmit."""
        for name in (
            "reveal_rederef",
            "implicit_branch_revealed",
            "multicore_secret_sharing",
        ):
            for scheme in (SchemeKind.NDA_RECON, SchemeKind.STT_RECON):
                cell = matrix.cell(name, scheme)
                assert cell.verdict is Verdict.BENIGN, (name, scheme)
                assert cell.transmitted, (name, scheme)

    def test_dom_never_transmits_cold_lines(self, matrix):
        for case in CATALOG:
            cell = matrix.cell(case.name, SchemeKind.DOM)
            assert cell.verdict is Verdict.PROTECTED, case.name

    def test_telemetry_verdict_events_cover_the_grid(self, matrix):
        assert matrix.event_counts.get("verdict", 0) == len(matrix.cells)
        assert matrix.event_counts.get("verdict_mismatch", 0) == 0


class TestCommittedExpectations:
    def test_matrix_matches_committed_expected_file(self, matrix, request):
        """CI's regression gate: the live verdicts equal the committed
        matrix (``tests/data/redteam_expected_matrix.json``)."""
        path = request.config.rootpath / "tests" / "data"
        expected = json.loads(
            (path / "redteam_expected_matrix.json").read_text()
        )
        assert matrix.verdict_map() == expected["verdicts"]


class TestMatrixResultPlumbing:
    def test_cell_lookup_and_outcome_shape(self, matrix):
        cell = matrix.cell("v1_bounds_bypass", SchemeKind.UNSAFE)
        assert isinstance(cell, CellOutcome)
        assert cell.ok
        payload = cell.as_dict()
        assert payload["verdict"] == "leak"
        assert payload["ok"] is True
        assert matrix.cell("no_such_gadget", SchemeKind.UNSAFE) is None

    def test_artifact_roundtrip(self, matrix, tmp_path):
        out = tmp_path / "BENCH_gadgets.json"
        matrix.save(out)
        payload = json.loads(out.read_text())
        assert payload["version"] == 1
        assert payload["summary"]["ok"] is True
        assert payload["summary"]["mismatches"] == 0
        assert payload["verdicts"] == matrix.verdict_map()
        assert len(payload["cells"]) == len(matrix.cells)

    def test_parallel_execution_agrees(self):
        """Worker processes rebuild gadget traces and reach the same
        verdicts as the in-process run."""
        partial = run_matrix(
            gadgets=["v1_bounds_bypass", "multicore_secret_sharing"],
            jobs=2,
        )
        assert partial.ok
        assert len(partial.cells) == 2 * len(MATRIX_SCHEMES)


class TestHotpathNote:
    def test_silent_on_reference_backends(self, monkeypatch, capsys):
        for value in ("", "legacy", "auto"):
            monkeypatch.setenv("REPRO_HOTPATH", value)
            assert hotpath_note() is None
        assert capsys.readouterr().err == ""

    def test_one_line_note_on_vector_backend(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_HOTPATH", "vector")
        note = hotpath_note()
        assert note is not None and "\n" not in note
        assert "REPRO_HOTPATH=vector" in note
        assert "reference" in note
        assert note in capsys.readouterr().err

    def test_matrix_runs_under_vector_hotpath(self, monkeypatch, capsys):
        """Satellite fix: no traceback, just the note, correct verdicts."""
        monkeypatch.setenv("REPRO_HOTPATH", "vector")
        result = run_matrix(
            gadgets=["v1_bounds_bypass"], schemes=[SchemeKind.UNSAFE]
        )
        assert result.ok
        assert "ignored" in capsys.readouterr().err
