"""Examples smoke test: every script in ``examples/`` runs headlessly.

Scripts are discovered dynamically, so a new example is covered the day
it lands — no test edit required.  Each must exit 0 with an empty
DISPLAY and no interactive input; scripts with documented output
contracts additionally have their promised lines asserted.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

#: Substrings each example's docstring promises in its stdout.
#: Discovery does not depend on this table — an unlisted script still
#: runs; it just has no content contract yet.
EXPECTED_OUTPUT = {
    "quickstart.py": ["stt+recon", "ReCon recovered"],
    "multicore_sharing.py": ["reveal hits", "canneal"],
    "custom_workload.py": ["custom/minidb", "saved 8000 micro-ops"],
    "leakage_analysis.py": ["spec2017/mcf", "pairs / DIFT"],
}


def all_examples():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert scripts, f"no example scripts found under {EXAMPLES}"
    return scripts


def run_example(name, timeout=600):
    env = dict(os.environ)
    env["DISPLAY"] = ""  # headless: no example may open a window
    env.setdefault(
        "PYTHONPATH", str(Path(__file__).resolve().parents[1] / "src")
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        stdin=subprocess.DEVNULL,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.parametrize("name", all_examples())
def test_example_runs_headlessly(name):
    out = run_example(name)
    for expected in EXPECTED_OUTPUT.get(name, []):
        assert expected in out, f"{name} output lost {expected!r}"


def test_spectre_gadget_verdicts():
    """The security demo's scheme-by-scheme story must hold exactly."""
    out = run_example("spectre_gadget.py")
    # The unsafe baseline leaks the never-leaked secret...
    never = out.split("ALREADY-REVEALED")[0]
    assert "unsafe    : TRANSMITTED while speculative" in never
    # ...the secure schemes do not...
    assert never.count("TRANSMITTED while speculative") == 1
    # ...and ReCon lifts only for the already-revealed pointer.
    revealed = out.split("ALREADY-REVEALED")[1]
    assert "stt+recon : TRANSMITTED while speculative" in revealed
    assert "nda+recon : TRANSMITTED while speculative" in revealed
    assert "stt       : transmitted only after" in revealed
