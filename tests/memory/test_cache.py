"""Unit tests for the set-associative cache array."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import CacheParams, MESIState
from repro.memory import CacheArray


def small_cache(ways=2, sets=4):
    return CacheArray(CacheParams(size_bytes=64 * ways * sets, ways=ways, latency=1))


class TestCacheArray:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(0x1000) is None
        cache.insert(0x1000, MESIState.SHARED)
        line = cache.lookup(0x1000)
        assert line is not None and line.state is MESIState.SHARED

    def test_lru_victim_is_least_recent(self):
        cache = small_cache(ways=2, sets=1)
        cache.insert(0x0000, MESIState.SHARED)
        cache.insert(0x0040, MESIState.SHARED)
        cache.lookup(0x0000)  # touch: 0x0040 becomes LRU
        _, victim = cache.insert(0x0080, MESIState.SHARED)
        assert victim is not None and victim.addr == 0x0040
        assert cache.lookup(0x0000) is not None

    def test_untouched_lookup_does_not_refresh_lru(self):
        cache = small_cache(ways=2, sets=1)
        cache.insert(0x0000, MESIState.SHARED)
        cache.insert(0x0040, MESIState.SHARED)
        cache.lookup(0x0000, touch=False)  # 0x0000 stays LRU
        _, victim = cache.insert(0x0080, MESIState.SHARED)
        assert victim is not None and victim.addr == 0x0000

    def test_reinsert_updates_in_place(self):
        cache = small_cache()
        cache.insert(0x1000, MESIState.SHARED, reveal=0x3)
        line, victim = cache.insert(0x1000, MESIState.MODIFIED, reveal=0x1)
        assert victim is None
        assert line.state is MESIState.MODIFIED and line.reveal == 0x1
        assert len(cache) == 1

    def test_remove(self):
        cache = small_cache()
        cache.insert(0x1000, MESIState.SHARED)
        removed = cache.remove(0x1000)
        assert removed is not None and removed.addr == 0x1000
        assert cache.lookup(0x1000) is None
        assert cache.remove(0x1000) is None

    def test_sets_isolate_addresses(self):
        cache = small_cache(ways=1, sets=4)
        # Same set index only every 4 lines (0x100 apart).
        cache.insert(0x0000, MESIState.SHARED)
        _, victim = cache.insert(0x0040, MESIState.SHARED)
        assert victim is None
        _, victim = cache.insert(0x0100, MESIState.SHARED)
        assert victim is not None and victim.addr == 0x0000

    @given(
        addrs=st.lists(
            st.integers(min_value=0, max_value=63).map(lambda i: i * 64),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_and_associativity_never_exceeded(self, addrs):
        """Property: occupancy never exceeds ways per set nor total lines."""
        cache = small_cache(ways=2, sets=4)
        for addr in addrs:
            cache.insert(addr, MESIState.SHARED)
            assert len(cache) <= 8
            assert cache.set_occupancy(addr) <= 2

    @given(
        addrs=st.lists(
            st.integers(min_value=0, max_value=31).map(lambda i: i * 64),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_most_recent_insert_always_resident(self, addrs):
        cache = small_cache(ways=2, sets=2)
        for addr in addrs:
            cache.insert(addr, MESIState.SHARED)
            assert cache.lookup(addr, touch=False) is not None
