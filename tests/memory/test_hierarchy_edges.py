"""Edge-case tests for hierarchy introspection and odd configurations."""

import dataclasses

import pytest

from repro.common import CacheLevel, StatSet
from repro.memory import MemoryHierarchy
from tests.memory.test_hierarchy import small_params


class TestIsRevealedFor:
    def test_remote_owner_vector_consulted(self):
        hier = MemoryHierarchy(small_params(num_cores=2))
        hier.read(0, 0x0)         # core 0 gets E
        hier.reveal(0, 0x0)
        # Core 1 holds nothing; a read would be served via a downgrade of
        # core 0, whose authoritative vector has the bit.
        assert hier.is_revealed_for(1, 0x0)

    def test_uncached_line_not_revealed(self):
        hier = MemoryHierarchy(small_params())
        assert not hier.is_revealed_for(0, 0xDEAD00)

    def test_private_copy_wins_over_directory(self):
        hier = MemoryHierarchy(small_params(num_cores=2))
        hier.read(0, 0x0)
        hier.read(1, 0x0)
        hier.reveal(0, 0x0)
        # Core 1's own (concealed) copy answers for core 1.
        assert not hier.is_revealed_for(1, 0x0)
        assert hier.is_revealed_for(0, 0x0)


class TestPeekAccess:
    def test_peek_does_not_mutate(self):
        hier = MemoryHierarchy(small_params())
        hit, revealed = hier.peek_access(0, 0x1000)
        assert not hit and not revealed
        # Still a cold miss afterwards — peek inserted nothing.
        assert hier.llc_line(0x1000) is None

    def test_peek_sees_l1_hit_and_bit(self):
        hier = MemoryHierarchy(small_params())
        hier.read(0, 0x1000)
        hier.reveal(0, 0x1000)
        hit, revealed = hier.peek_access(0, 0x1000)
        assert hit and revealed
        hit2, revealed2 = hier.peek_access(0, 0x1008)
        assert hit2 and not revealed2

    def test_peek_reports_l2_resident_reveal(self):
        from tests.memory.test_hierarchy import l1_conflicts

        hier = MemoryHierarchy(small_params())
        hier.read(0, 0x0)
        hier.reveal(0, 0x0)
        for addr in l1_conflicts(0x0, 3)[1:]:
            hier.read(0, addr)
        hit, revealed = hier.peek_access(0, 0x0)
        assert not hit  # evicted from L1
        assert revealed  # but the L2 still knows


class TestEmptyReconLevels:
    def test_no_levels_tracked_means_never_revealed(self):
        params = dataclasses.replace(small_params(), recon_levels=())
        hier = MemoryHierarchy(params)
        hier.read(0, 0x0)
        assert not hier.reveal(0, 0x0)  # dropped: nowhere to store the bit
        assert not hier.read(0, 0x0, now=500).revealed

    def test_pipeline_runs_with_no_tracked_levels(self):
        from repro.common import SchemeKind
        from repro.isa import Program
        from tests.helpers import make_core

        prog = Program()
        prog.poke(0x1000, 0x2000)
        prog.li(1, 0x1000)
        for _ in range(10):
            prog.load(2, base=1)
            prog.load(3, base=2)
        params = dataclasses.replace(
            small_params(), recon_levels=()
        )
        core = make_core(prog, SchemeKind.STT_RECON, params=params)
        core.run()
        # ReCon degenerates gracefully to plain STT behaviour.
        assert core.stats.reveal_hits == 0
        assert core.stats.committed_uops == len(prog)


class TestDroppedRevealAccounting:
    def test_counts_accumulate(self):
        hier = MemoryHierarchy(small_params())
        for i in range(5):
            hier.reveal(0, 0x9000 + i * 64)
        assert hier.dropped_reveals == 5
