"""Unit tests for the interconnect models."""

import dataclasses

import pytest

from repro.common import CacheParams, MemoryParams, SystemParams
from repro.memory import FixedLatencyInterconnect, MemoryHierarchy
from repro.memory.interconnect import MeshInterconnect


class TestFixedLatency:
    def test_constant_latency(self):
        noc = FixedLatencyInterconnect(4)
        assert noc.hop() == 4
        assert noc.hop(src=0, dst=3) == 4
        assert noc.messages == 2

    def test_bitvector_accounting(self):
        noc = FixedLatencyInterconnect(2)
        noc.hop(carries_bitvector=True)
        noc.hop()
        assert noc.bitvector_messages == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatencyInterconnect(-1)

    def test_no_home_node(self):
        assert FixedLatencyInterconnect(1).home_node(0x1000) is None


class TestMesh:
    def test_distance_xy(self):
        mesh = MeshInterconnect(rows=2, cols=2, link_latency=3)
        # node layout: 0 1 / 2 3
        assert mesh.distance(0, 1) == 1
        assert mesh.distance(0, 3) == 2
        assert mesh.distance(1, 2) == 2
        assert mesh.distance(0, 0) == 1  # one-link minimum

    def test_hop_latency_scales_with_distance(self):
        mesh = MeshInterconnect(rows=2, cols=2, link_latency=3)
        assert mesh.hop(src=0, dst=3) == 6
        assert mesh.hop(src=0, dst=1) == 3

    def test_endpointless_hop_uses_average(self):
        mesh = MeshInterconnect(rows=4, cols=4, link_latency=2)
        assert mesh.hop() == 2 * max(1, (4 + 4) // 3)

    def test_home_node_interleaves_lines(self):
        mesh = MeshInterconnect(rows=2, cols=2, link_latency=1)
        homes = {mesh.home_node(i * 64) for i in range(8)}
        assert homes == {0, 1, 2, 3}

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            MeshInterconnect(rows=0, cols=2, link_latency=1)


def mesh_params():
    memory = MemoryParams(
        l1=CacheParams(size_bytes=8 * 64, ways=2, latency=2),
        l2=CacheParams(size_bytes=16 * 64, ways=4, latency=6),
        llc=CacheParams(size_bytes=64 * 64, ways=4, latency=16),
        dram_latency=100,
        noc_hop_latency=3,
        topology="mesh",
        mesh_rows=2,
        mesh_cols=2,
    )
    return SystemParams(memory=memory, num_cores=4)


class TestMeshHierarchy:
    def test_hierarchy_builds_mesh(self):
        hier = MemoryHierarchy(mesh_params())
        assert isinstance(hier.noc, MeshInterconnect)

    def test_distance_affects_miss_latency(self):
        hier = MemoryHierarchy(mesh_params())
        # Find two lines homed at different distances from core 0.
        near = next(
            a for a in range(0, 64 * 64, 64)
            if hier.noc.distance(0, hier.noc.home_node(a)) == 1
        )
        far = next(
            a for a in range(0, 64 * 64, 64)
            if hier.noc.distance(0, hier.noc.home_node(a)) == 2
        )
        lat_near = hier.read(0, near).latency
        lat_far = hier.read(0, far).latency
        assert lat_far > lat_near

    def test_protocol_still_correct_on_mesh(self):
        hier = MemoryHierarchy(mesh_params())
        hier.read(0, 0x0)
        hier.reveal(0, 0x0)
        hier.write(1, 0x0)
        assert not hier.read(2, 0x0, now=500).revealed
        hier.check_coherence_invariants()

    def test_validation_rejects_unknown_topology(self):
        memory = dataclasses.replace(mesh_params().memory, topology="torus")
        with pytest.raises(ValueError):
            SystemParams(memory=memory).validate()


class TestSeededRuns:
    def test_run_benchmark_seeds(self):
        from repro.common import SchemeKind
        from repro.sim import RunConfig
        from repro.sim.runner import TraceCache, run_benchmark_seeds
        from repro.workloads import get_benchmark

        profile = get_benchmark("spec2017", "gcc")
        result = run_benchmark_seeds(
            profile,
            SchemeKind.UNSAFE,
            1200,
            seeds=(1, 2, 3),
            config=RunConfig(cache=TraceCache()),
        )
        assert len(result.runs) == 3
        assert result.mean_ipc > 0
        assert result.std_ipc >= 0
        # Different seeds give (slightly) different measurements.
        assert len(set(result.ipcs)) > 1

    def test_requires_seeds(self):
        from repro.common import SchemeKind
        from repro.sim.runner import run_benchmark_seeds
        from repro.workloads import get_benchmark

        with pytest.raises(ValueError):
            run_benchmark_seeds(
                get_benchmark("spec2017", "gcc"), SchemeKind.UNSAFE, 500, seeds=()
            )
