"""Unit tests for the MESI hierarchy and ReCon bit-vector management."""

import pytest

from repro.common import (
    CacheLevel,
    CacheParams,
    MemoryParams,
    MESIState,
    SystemParams,
)
from repro.memory import MemoryHierarchy


def small_params(num_cores=1, recon_levels=None):
    """A tiny hierarchy so tests can force evictions deliberately.

    L1: 4 sets x 2 ways, L2: 4 sets x 4 ways, LLC: 16 sets x 4 ways.
    """
    memory = MemoryParams(
        l1=CacheParams(size_bytes=8 * 64, ways=2, latency=2),
        l2=CacheParams(size_bytes=16 * 64, ways=4, latency=6),
        llc=CacheParams(size_bytes=64 * 64, ways=4, latency=16),
        dram_latency=100,
        noc_hop_latency=4,
    )
    return SystemParams(
        memory=memory, num_cores=num_cores, recon_levels=recon_levels
    )


def l1_conflicts(base, count):
    """Addresses all mapping to the same L1 set (4 sets => stride 4*64)."""
    return [base + i * 4 * 64 for i in range(count)]


class TestBasicAccess:
    def test_cold_miss_then_hits(self):
        hier = MemoryHierarchy(small_params())
        miss = hier.read(0, 0x1000)
        assert miss.level is CacheLevel.LLC
        assert miss.latency >= 100  # includes DRAM
        hit = hier.read(0, 0x1000, now=miss.latency)
        assert hit.level is CacheLevel.L1
        assert hit.latency == 2

    def test_fresh_line_fully_concealed(self):
        hier = MemoryHierarchy(small_params())
        assert not hier.read(0, 0x1000).revealed
        assert not hier.read(0, 0x1008).revealed

    def test_line_granular_fills(self):
        hier = MemoryHierarchy(small_params())
        hier.read(0, 0x1000)
        # Same line, different word: L1 hit.
        assert hier.read(0, 0x1038, now=500).level is CacheLevel.L1

    def test_mshr_merges_inflight_fill(self):
        hier = MemoryHierarchy(small_params())
        first = hier.read(0, 0x1000, now=0)
        # Issued one cycle later while the fill is in flight: waits for it,
        # does not pay a second full miss.
        second = hier.read(0, 0x1008, now=1)
        assert second.level is CacheLevel.L1
        assert second.latency == first.latency - 1

    def test_l2_hit_after_l1_eviction(self):
        hier = MemoryHierarchy(small_params())
        addrs = l1_conflicts(0x0, 3)  # 3 lines into a 2-way L1 set
        for addr in addrs:
            hier.read(0, addr)
        result = hier.read(0, addrs[0], now=10_000)
        assert result.level is CacheLevel.L2
        assert result.latency == 6


class TestRevealConcealLifecycle:
    def test_reveal_then_read_sees_revealed(self):
        hier = MemoryHierarchy(small_params())
        hier.read(0, 0x1000)
        assert hier.reveal(0, 0x1000)
        assert hier.read(0, 0x1000, now=500).revealed

    def test_reveal_is_word_granular(self):
        hier = MemoryHierarchy(small_params())
        hier.read(0, 0x1000)
        hier.reveal(0, 0x1000)
        assert not hier.read(0, 0x1008, now=500).revealed

    def test_reveal_dropped_when_line_absent(self):
        hier = MemoryHierarchy(small_params())
        assert not hier.reveal(0, 0x9000)
        assert hier.dropped_reveals == 1

    def test_store_conceals_word(self):
        hier = MemoryHierarchy(small_params())
        hier.read(0, 0x1000)
        hier.reveal(0, 0x1000)
        hier.write(0, 0x1000)
        assert not hier.read(0, 0x1000, now=500).revealed

    def test_sub_word_store_conceals_whole_word(self):
        hier = MemoryHierarchy(small_params())
        hier.read(0, 0x1000)
        hier.reveal(0, 0x1000)
        hier.write(0, 0x1003)  # a byte inside the revealed word
        assert not hier.read(0, 0x1000, now=500).revealed

    def test_reveal_survives_l1_eviction_via_l2(self):
        hier = MemoryHierarchy(small_params())
        hier.read(0, 0x0)
        hier.reveal(0, 0x0)
        for addr in l1_conflicts(0x0, 3)[1:]:
            hier.read(0, addr)
        result = hier.read(0, 0x0, now=10_000)
        assert result.level is CacheLevel.L2
        assert result.revealed

    def test_conceal_survives_l1_eviction(self):
        """An L1 eviction must not resurrect a concealed word from L2."""
        hier = MemoryHierarchy(small_params())
        hier.read(0, 0x0)
        hier.reveal(0, 0x0)
        # Evict to L2 (vector with reveal goes down), bring back, conceal.
        for addr in l1_conflicts(0x0, 3)[1:]:
            hier.read(0, addr)
        hier.read(0, 0x0)  # back into L1, revealed
        hier.write(0, 0x0)  # conceal in L1 (L2 copy now stale)
        for addr in l1_conflicts(0x0, 3)[1:]:
            hier.read(0, addr)  # evict again: must overwrite, not OR
        assert not hier.read(0, 0x0, now=10_000).revealed


class TestCoherence:
    def test_reveal_propagates_between_cores_via_directory(self):
        """Paper section 5.3: one core's reveals benefit another core."""
        hier = MemoryHierarchy(small_params(num_cores=2))
        hier.read(0, 0x0)
        hier.reveal(0, 0x0)
        # Core 0 evicts the line out of its private hierarchy entirely.
        for addr in l1_conflicts(0x0, 5)[1:]:
            hier.read(0, addr)
        # Core 1 reads: the directory copy carries the reveal.
        result = hier.read(1, 0x0)
        assert result.revealed

    def test_downgrade_transfers_owner_vector(self):
        hier = MemoryHierarchy(small_params(num_cores=2))
        hier.read(0, 0x0)       # core 0: E
        hier.reveal(0, 0x0)
        result = hier.read(1, 0x0)  # GetS forces a downgrade of core 0
        assert result.revealed

    def test_or_merge_accumulates_reveals_from_both_cores(self):
        hier = MemoryHierarchy(small_params(num_cores=2))
        hier.read(0, 0x0)
        hier.read(1, 0x0)
        hier.reveal(0, 0x0)      # word 0 revealed by core 0
        hier.reveal(1, 0x8)      # word 1 revealed by core 1
        for addr in l1_conflicts(0x0, 5)[1:]:
            hier.read(0, addr)   # core 0 evicts: OR-merge word 0
        for addr in l1_conflicts(0x2000, 5):
            hier.read(1, addr)   # core 1 evicts: OR-merge word 1
        hier_read = hier.read(0, 0x0, now=50_000)
        assert hier_read.revealed
        assert hier.read(0, 0x8, now=51_000).revealed

    def test_remote_store_conceals_for_everyone(self):
        hier = MemoryHierarchy(small_params(num_cores=2))
        hier.read(0, 0x0)
        hier.reveal(0, 0x0)
        hier.write(1, 0x0)   # invalidates core 0, conceals the word
        assert not hier.read(0, 0x0, now=500).revealed
        assert not hier.read(1, 0x0, now=500).revealed

    def test_invalidated_sharer_vector_is_lost(self):
        """Footnote 1: invalidation drops the reader's private reveals."""
        hier = MemoryHierarchy(small_params(num_cores=2))
        hier.read(0, 0x0)
        hier.read(1, 0x0)
        hier.reveal(0, 0x0)          # core 0's private reveal, word 0
        hier.write(1, 0x38)          # core 1 writes a *different* word
        # Core 0's reveal of word 0 was in the invalidated copy: lost.
        assert not hier.read(0, 0x0, now=500).revealed

    def test_m_writeback_overwrites_directory_vector(self):
        """A writer's writeback must not OR with a stale directory vector."""
        hier = MemoryHierarchy(small_params(num_cores=2))
        hier.read(0, 0x0)
        hier.reveal(0, 0x0)
        for addr in l1_conflicts(0x0, 5)[1:]:
            hier.read(0, addr)   # directory vector now has word 0 revealed
        hier.write(1, 0x0)       # core 1 takes M, conceals word 0
        for addr in l1_conflicts(0x2000, 5):
            hier.read(1, addr)   # core 1 evicts M: overwrite directory
        assert not hier.read(0, 0x0, now=90_000).revealed

    def test_invariants_hold_after_mixed_traffic(self):
        hier = MemoryHierarchy(small_params(num_cores=2))
        for i in range(40):
            hier.read(i % 2, (i * 0x40) % 0x800)
            if i % 3 == 0:
                hier.write((i + 1) % 2, (i * 0x40) % 0x800)
        hier.check_coherence_invariants()

    def test_llc_eviction_recalls_private_copies(self):
        params = small_params()
        hier = MemoryHierarchy(params)
        # Touch enough distinct lines to overflow one LLC set (4 ways,
        # 16 sets => stride 16*64).
        stride = 16 * 64
        addrs = [i * stride for i in range(6)]
        for addr in addrs:
            hier.read(0, addr)
        hier.check_coherence_invariants()
        resident = [a for a in addrs if hier.llc_line(a) is not None]
        assert len(resident) <= 4


class TestReconLevelRestriction:
    def test_l1_only_loses_reveal_on_l1_eviction(self):
        hier = MemoryHierarchy(small_params(recon_levels=(CacheLevel.L1,)))
        hier.read(0, 0x0)
        hier.reveal(0, 0x0)
        assert hier.read(0, 0x0, now=500).revealed  # still in L1
        for addr in l1_conflicts(0x0, 3)[1:]:
            hier.read(0, addr)
        assert not hier.read(0, 0x0, now=10_000).revealed

    def test_l1_l2_keeps_reveal_until_l2_eviction(self):
        hier = MemoryHierarchy(
            small_params(recon_levels=(CacheLevel.L1, CacheLevel.L2))
        )
        hier.read(0, 0x0)
        hier.reveal(0, 0x0)
        for addr in l1_conflicts(0x0, 3)[1:]:
            hier.read(0, addr)
        assert hier.read(0, 0x0, now=10_000).revealed  # L2 still tracks
        # Push it out of L2 as well (L2: 4 sets x 4 ways => stride 4*64).
        for addr in l1_conflicts(0x0, 6)[1:]:
            hier.read(0, addr, now=20_000)
        assert not hier.read(0, 0x0, now=30_000).revealed

    def test_l1_only_does_not_share_across_cores(self):
        hier = MemoryHierarchy(
            small_params(num_cores=2, recon_levels=(CacheLevel.L1,))
        )
        hier.read(0, 0x0)
        hier.reveal(0, 0x0)
        assert not hier.read(1, 0x0).revealed


class TestStatsPlumbing:
    def test_hit_miss_counters(self):
        from repro.common import StatSet

        hier = MemoryHierarchy(small_params())
        stats = StatSet()
        hier.attach_stats(0, stats)
        hier.read(0, 0x1000)
        hier.read(0, 0x1000, now=500)
        assert stats.l1_misses == 1
        assert stats.l1_hits == 1
        assert stats.llc_misses == 1

    def test_invalidation_counters(self):
        from repro.common import StatSet

        hier = MemoryHierarchy(small_params(num_cores=2))
        s0, s1 = StatSet(), StatSet()
        hier.attach_stats(0, s0)
        hier.attach_stats(1, s1)
        hier.read(0, 0x0)
        hier.write(1, 0x0)
        assert s0.invalidations == 1
