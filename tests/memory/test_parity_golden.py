"""Contention-free parity against the pre-refactor golden.

The packet/port/MSHR transaction engine must reproduce the legacy
atomic latency-summing hierarchy *exactly* when every contention knob
is left unbounded (the default ``MemoryTimingParams``).  The golden in
``tests/data/memory_parity_golden.json`` was captured from the
pre-refactor model by ``scripts/capture_memory_golden.py``; these tests
re-run the identical deterministic stimulus on the current engine and
compare every latency, outcome, and counter.
"""

import json
from pathlib import Path

import pytest

from tests.memory.parity_driver import (
    ACCESS_CONFIGS,
    GOLDEN_PATH,
    RUN_CELLS,
    drive_accesses,
    run_cells,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def golden():
    return json.loads((REPO_ROOT / GOLDEN_PATH).read_text())


class TestAccessParity:
    @pytest.mark.parametrize("name", ACCESS_CONFIGS)
    def test_access_stream_matches_golden(self, golden, name):
        expected = golden["accesses"][name]
        actual = drive_accesses(name)
        assert len(actual) == len(expected)
        for index, (got, want) in enumerate(zip(actual, expected)):
            assert got == want, f"{name} record {index}: {got} != {want}"


class TestBenchmarkParity:
    def test_benchmark_cells_match_golden(self, golden):
        expected = golden["runs"]
        actual = run_cells()
        assert set(actual) == set(expected)
        for label in expected:
            assert actual[label]["cycles"] == expected[label]["cycles"], label
            want_stats = expected[label]["stats"]
            got_stats = actual[label]["stats"]
            for key, value in want_stats.items():
                assert got_stats.get(key) == value, f"{label}: {key}"

    def test_golden_covers_every_cell(self, golden):
        # Guards against the golden file silently going stale when cells
        # are added to the driver without re-capturing.
        assert len(golden["runs"]) == len(RUN_CELLS)
        assert set(golden["accesses"]) == set(ACCESS_CONFIGS)
