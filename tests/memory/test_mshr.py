"""MSHR file semantics and the outstanding-fill path of the hierarchy.

Covers the three corners the refactor issue called out explicitly:
hit-under-miss, a same-line secondary access before the fill lands, and
fill-table cleanup when the line leaves the private hierarchy.
"""

import pytest

from repro.common import CacheLevel, StatSet
from repro.memory import MemoryHierarchy
from repro.memory.mshr import MSHRFile

from tests.memory.test_hierarchy import l1_conflicts, small_params


class TestMSHRFile:
    def test_rejects_nonpositive_entries(self):
        with pytest.raises(ValueError):
            MSHRFile(0)
        with pytest.raises(ValueError):
            MSHRFile(-4)

    def test_unbounded_never_stalls(self):
        mshr = MSHRFile()
        for i in range(100):
            assert mshr.allocate(now=0) == 0
            mshr.register_fill(i * 64, ready=500, now=0)
        assert mshr.stall_cycles == 0
        assert mshr.peak_occupancy == 100

    def test_bounded_allocate_stalls_until_earliest_retires(self):
        mshr = MSHRFile(entries=2)
        mshr.register_fill(0x000, ready=10, now=0)
        mshr.register_fill(0x040, ready=30, now=0)
        # Full: the next primary miss waits for the ready=10 fill.
        assert mshr.allocate(now=4) == 6
        assert mshr.stall_cycles == 6
        # After that fill lands, a slot is free immediately.
        assert mshr.allocate(now=11) == 0

    def test_entries_retire_implicitly_when_fill_lands(self):
        mshr = MSHRFile(entries=1)
        mshr.register_fill(0x000, ready=10, now=0)
        assert mshr.occupancy(5) == 1
        assert mshr.occupancy(10) == 0

    def test_merge_waits_for_fill_but_never_below_hit_latency(self):
        mshr = MSHRFile()
        mshr.register_fill(0x000, ready=100, now=0)
        assert mshr.merge(0x000, now=40, hit_latency=2) == 60
        assert mshr.merge(0x000, now=99, hit_latency=2) == 2
        assert mshr.hits_under_miss == 2
        # Landed fills are no longer merge targets.
        assert mshr.merge(0x000, now=100, hit_latency=2) is None
        assert mshr.hits_under_miss == 2

    def test_writes_occupy_but_never_merge(self):
        mshr = MSHRFile(entries=1)
        mshr.register_write(0x000, ready=50, now=0)
        assert mshr.occupancy(10) == 1
        assert mshr.pending_ready(0x000, 10) is None
        assert mshr.merge(0x000, now=10, hit_latency=2) is None

    def test_retire_drops_both_tables(self):
        mshr = MSHRFile()
        mshr.register_fill(0x000, ready=100, now=0)
        mshr.register_write(0x040, ready=100, now=0)
        mshr.retire(0x000)
        mshr.retire(0x040)
        assert mshr.occupancy(0) == 0
        assert mshr.pending_ready(0x000, 0) is None


class TestOutstandingFillPath:
    def test_hit_under_miss_waits_for_inflight_fill(self):
        hier = MemoryHierarchy(small_params())
        stats = StatSet()
        hier.attach_stats(0, stats)
        miss = hier.read(0, 0x1000, now=0)
        # Another word of the same line, before the fill lands: charged
        # the remaining fill time, not a second miss.
        secondary = hier.read(0, 0x1008, now=5)
        assert secondary.level is CacheLevel.L1
        assert secondary.latency == miss.latency - 5
        assert stats.mshr_hits_under_miss == 1

    def test_same_word_secondary_access_before_fill_lands(self):
        hier = MemoryHierarchy(small_params())
        stats = StatSet()
        hier.attach_stats(0, stats)
        miss = hier.read(0, 0x2000, now=0)
        again = hier.read(0, 0x2000, now=1)
        assert again.latency == miss.latency - 1
        assert stats.mshr_hits_under_miss == 1
        # Once the fill has landed, the same access is a plain L1 hit.
        landed = hier.read(0, 0x2000, now=miss.latency)
        assert landed.latency == hier.params.memory.l1.latency
        assert stats.mshr_hits_under_miss == 1

    def test_fill_entry_cleaned_up_on_eviction(self):
        hier = MemoryHierarchy(small_params())
        stats = StatSet()
        hier.attach_stats(0, stats)
        target = 0x0
        hier.read(0, target, now=0)  # fill in flight for a long time
        assert hier._privs[0].mshr.pending_ready(target, 1) is not None
        # Evict the line from L1 *and* L2 while its fill entry is still
        # outstanding (conflicting lines map to the same set in both).
        for addr in l1_conflicts(target, 8)[1:]:
            hier.read(0, addr, now=0)
        assert hier._privs[0].mshr.pending_ready(target, 1) is None
        # Re-fetching must take the full miss path, not merge into the
        # stale fill entry of the evicted line.
        before = stats.mshr_hits_under_miss
        refetch = hier.read(0, target, now=1)
        assert refetch.level is not CacheLevel.L1
        assert stats.mshr_hits_under_miss == before

    def test_fill_entry_cleaned_up_on_invalidation(self):
        hier = MemoryHierarchy(small_params(num_cores=2))
        stats = StatSet()
        hier.attach_stats(0, stats)
        hier.read(0, 0x3000, now=0)  # core 0 fill in flight
        hier.write(1, 0x3000, now=0)  # GetM invalidates core 0's copy
        assert hier._privs[0].mshr.pending_ready(0x3000, 1) is None
        before = stats.mshr_hits_under_miss
        refetch = hier.read(0, 0x3000, now=1)
        assert refetch.level is not CacheLevel.L1
        assert stats.mshr_hits_under_miss == before
        hier.check_coherence_invariants()

    def test_write_does_not_create_merge_target(self):
        hier = MemoryHierarchy(small_params())
        stats = StatSet()
        hier.attach_stats(0, stats)
        hier.write(0, 0x4000, now=0)
        # The write installed the line in M: a subsequent read is a plain
        # L1 hit, not an MSHR merge (legacy never registered write fills).
        result = hier.read(0, 0x4008, now=1)
        assert result.level is CacheLevel.L1
        assert result.latency == hier.params.memory.l1.latency
        assert stats.mshr_hits_under_miss == 0
        # But the write does occupy an entry while outstanding.
        assert hier.mshr_occupancy(0, now=1) == 1

    def test_occupancy_helper_tracks_outstanding_fills(self):
        hier = MemoryHierarchy(small_params())
        assert hier.mshr_occupancy(0, now=0) == 0
        first = hier.read(0, 0x5000, now=0)
        hier.read(0, 0x6000, now=0)
        assert hier.mshr_occupancy(0, now=1) == 2
        assert hier.mshr_occupancy(0, now=first.latency + 1000) == 0
