"""Unit tests for reveal/conceal bit-vector helpers."""

from repro.memory import recon_bits


class TestRevealConceal:
    def test_fresh_vector_all_concealed(self):
        vec = recon_bits.ALL_CONCEALED
        for word in range(8):
            assert not recon_bits.is_word_revealed(vec, word * 8)

    def test_reveal_sets_only_target_word(self):
        vec = recon_bits.reveal_word(recon_bits.ALL_CONCEALED, 0x1210)
        assert recon_bits.is_word_revealed(vec, 0x1210)
        assert recon_bits.is_word_revealed(vec, 0x1213)  # same word, any byte
        assert not recon_bits.is_word_revealed(vec, 0x1218)
        assert not recon_bits.is_word_revealed(vec, 0x1208)

    def test_conceal_clears_target_word(self):
        vec = recon_bits.FULL_MASK
        vec = recon_bits.conceal_word(vec, 0x1238)
        assert not recon_bits.is_word_revealed(vec, 0x1238)
        assert recon_bits.is_word_revealed(vec, 0x1230)

    def test_conceal_is_idempotent(self):
        vec = recon_bits.conceal_word(recon_bits.ALL_CONCEALED, 0x100)
        assert vec == recon_bits.ALL_CONCEALED

    def test_merge_is_or(self):
        a = recon_bits.reveal_word(0, 0x00)
        b = recon_bits.reveal_word(0, 0x08)
        merged = recon_bits.merge(a, b)
        assert recon_bits.is_word_revealed(merged, 0x00)
        assert recon_bits.is_word_revealed(merged, 0x08)
        assert recon_bits.popcount(merged) == 2

    def test_popcount_full(self):
        assert recon_bits.popcount(recon_bits.FULL_MASK) == 8
