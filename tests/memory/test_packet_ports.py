"""Packets, bounded ports, and the contention model of the hierarchy.

The contention knobs (:class:`MemoryTimingParams`) are all unbounded by
default — the parity suite pins that case to the legacy golden.  These
tests cover the bounded side: queueing only ever *adds* latency, stats
attribute the waits, and the coherence invariants keep holding.
"""

import dataclasses
import random

import pytest

from repro.common import (
    CacheLevel,
    CacheParams,
    MemoryParams,
    MemoryTimingParams,
    StatSet,
    SystemParams,
)
from repro.memory import (
    BandwidthPort,
    FixedLatencyInterconnect,
    MainMemory,
    MemPacket,
    MemoryHierarchy,
    MeshInterconnect,
    PacketKind,
)


def timed_params(num_cores=1, topology="crossbar", **timing_kwargs):
    """Tiny hierarchy (as in test_hierarchy) with timing overrides."""
    memory = MemoryParams(
        l1=CacheParams(size_bytes=8 * 64, ways=2, latency=2),
        l2=CacheParams(size_bytes=16 * 64, ways=4, latency=6),
        llc=CacheParams(size_bytes=64 * 64, ways=4, latency=16),
        dram_latency=100,
        noc_hop_latency=4,
        timing=MemoryTimingParams(**timing_kwargs),
    )
    if topology == "mesh":
        memory = dataclasses.replace(
            memory, topology="mesh", mesh_rows=2, mesh_cols=2
        )
    return SystemParams(memory=memory, num_cores=num_cores)


def drive_mix(hier, num_cores, ops=200, seed=7):
    """A deterministic read/write/reveal mix; returns total latency."""
    rng = random.Random(seed)
    total = 0
    now = 0
    for _ in range(ops):
        core = rng.randrange(num_cores)
        addr = rng.randrange(0x2000) & ~0x7
        roll = rng.random()
        if roll < 0.6:
            total += hier.read(core, addr, now=now).latency
        elif roll < 0.8:
            total += hier.write(core, addr, now=now)
        else:
            hier.reveal(core, addr, now=now)
        if rng.random() < 0.5:
            now += rng.choice((1, 3, 20, 200))
    return total


class TestMemPacket:
    def test_request_sets_source_node(self):
        pkt = MemPacket.request(PacketKind.READ_REQ, 3, 0x1008, 42)
        assert pkt.src == 3 and pkt.core == 3
        assert pkt.issued_at == 42
        assert not pkt.is_response

    def test_non_request_kinds_rejected(self):
        for kind in (PacketKind.RESP, PacketKind.SNOOP, PacketKind.WRITEBACK):
            assert not kind.is_request
            with pytest.raises(ValueError):
                MemPacket.request(kind, 0, 0x0, 0)

    def test_ready_at_requires_completion(self):
        pkt = MemPacket.request(PacketKind.READ_REQ, 0, 0x1000, 10)
        with pytest.raises(ValueError):
            pkt.ready_at
        pkt.complete(25, level=CacheLevel.LLC)
        assert pkt.is_response
        assert pkt.ready_at == 35

    def test_word_revealed_reads_carried_vector(self):
        pkt = MemPacket.request(PacketKind.READ_REQ, 0, 0x1008, 0)
        assert not pkt.word_revealed()
        pkt.complete(2, reveal_vector=0b10)  # word index 1 of the line
        assert pkt.word_revealed()
        assert not pkt.word_revealed(0x1000)

    def test_fire_invokes_callback_once(self):
        fired = []
        pkt = MemPacket.request(
            PacketKind.READ_REQ, 0, 0x0, 0, on_complete=fired.append
        )
        pkt.complete(5)
        pkt.fire()
        pkt.fire()
        assert fired == [pkt]

    def test_packet_ids_are_distinct(self):
        a = MemPacket.request(PacketKind.READ_REQ, 0, 0x0, 0)
        b = MemPacket.request(PacketKind.READ_REQ, 0, 0x0, 0)
        assert a.packet_id != b.packet_id


class TestBandwidthPort:
    def test_unbounded_never_waits(self):
        port = BandwidthPort()
        assert all(port.acquire(0) == 0 for _ in range(50))
        assert port.stall_cycles == 0

    def test_bounded_serializes_same_cycle_grants(self):
        port = BandwidthPort(width=2)
        assert port.acquire(5) == 0
        assert port.acquire(5) == 0
        assert port.acquire(5) == 1  # third request: next cycle
        assert port.acquire(5) == 1
        assert port.acquire(5) == 2
        assert port.stall_cycles == 4

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            BandwidthPort(width=0)


class TestBoundedDram:
    def test_unbounded_is_flat_latency(self):
        dram = MainMemory(100)
        assert dram.fetch(now=0) == 100
        assert dram.fetch(now=0) == 100
        assert dram.queue_cycles == 0

    def test_bounded_queue_delays_overflow(self):
        dram = MainMemory(100, queue_depth=1)
        assert dram.fetch(now=0) == 100
        # Channel busy until 100: the second fetch waits for the slot.
        assert dram.fetch(now=0) == 200
        assert dram.queue_cycles == 100
        # After the channel drains, service is flat again.
        assert dram.fetch(now=500) == 100

    def test_clock_less_fetch_never_queues(self):
        dram = MainMemory(100, queue_depth=1)
        assert dram.fetch() == 100
        assert dram.fetch() == 100
        assert dram.queue_cycles == 0


class TestBoundedInterconnect:
    def test_bounded_link_queues_injections(self):
        noc = FixedLatencyInterconnect(4, link_width=1)
        assert noc.hop(now=0) == 4
        assert noc.hop(now=0) == 5  # second message waits one cycle
        assert noc.queue_cycles == 1
        assert noc.queue_depth(0) == 1

    def test_mesh_counts_endpoint_less_messages(self):
        mesh = MeshInterconnect(2, 2, 4)
        assert mesh.hop(src=0, dst=3) == 8
        assert mesh.averaged_hops == 0
        mesh.hop()  # endpoint-less: charged the average distance
        assert mesh.averaged_hops == 1


class TestContentionInHierarchy:
    def test_bounded_mshr_stalls_primary_misses(self):
        free = MemoryHierarchy(timed_params())
        bound = MemoryHierarchy(timed_params(mshr_entries=1))
        stats = StatSet()
        bound.attach_stats(0, stats)
        lines = [0x1000, 0x2000, 0x3000, 0x4000]
        free_total = sum(free.read(0, a, now=0).latency for a in lines)
        bound_total = sum(bound.read(0, a, now=0).latency for a in lines)
        assert bound_total > free_total
        assert stats.mshr_stall_cycles > 0

    def test_bounded_port_charges_wait(self):
        bound = MemoryHierarchy(timed_params(port_width=1))
        stats = StatSet()
        bound.attach_stats(0, stats)
        first = bound.read(0, 0x1000, now=0)
        second = bound.read(0, 0x1000, now=0)  # same cycle: port conflict
        assert second.latency > 0
        assert stats.port_stall_cycles == 1
        assert first.latency >= 100  # unaffected cold miss

    def test_bounded_noc_and_dram_only_add_latency(self):
        free = MemoryHierarchy(timed_params())
        bound = MemoryHierarchy(
            timed_params(noc_link_width=1, dram_queue_depth=1)
        )
        stats = StatSet()
        bound.attach_stats(0, stats)
        lines = [0x1000, 0x2000, 0x3000]
        for addr in lines:
            assert (
                bound.read(0, addr, now=0).latency
                >= free.read(0, addr, now=0).latency
            )
        assert stats.noc_queue_cycles + stats.dram_queue_cycles > 0

    @pytest.mark.parametrize("topology", ["crossbar", "mesh"])
    def test_invariants_hold_under_bounded_bandwidth(self, topology):
        params = timed_params(
            num_cores=4,
            topology=topology,
            mshr_entries=2,
            port_width=1,
            noc_link_width=1,
            dram_queue_depth=2,
        )
        hier = MemoryHierarchy(params)
        drive_mix(hier, num_cores=4)
        hier.check_coherence_invariants()

    def test_invariants_catch_averaged_hops(self):
        hier = MemoryHierarchy(timed_params(num_cores=4, topology="mesh"))
        drive_mix(hier, num_cores=4)
        hier.check_coherence_invariants()  # protocol always has endpoints
        hier.noc.hop()  # a message that lost its endpoints
        with pytest.raises(AssertionError, match="average-distance"):
            hier.check_coherence_invariants()


class TestMemoryTimingParams:
    def test_default_is_contention_free(self):
        timing = MemoryTimingParams()
        assert timing.contention_free
        timing.validate()

    def test_any_bound_disables_contention_free(self):
        assert not MemoryTimingParams(mshr_entries=8).contention_free
        assert not MemoryTimingParams(noc_link_width=2).contention_free

    def test_validate_rejects_nonpositive(self):
        for field in (
            "mshr_entries",
            "port_width",
            "noc_link_width",
            "dram_queue_depth",
        ):
            with pytest.raises(ValueError):
                MemoryTimingParams(**{field: 0}).validate()
