"""Deterministic drivers for the contention-free parity golden.

The packet/port refactor must reproduce the legacy atomic
latency-summing model *exactly* when contention is configured away
(unbounded ports, unbounded MSHRs, no DRAM queue).  This module holds
the deterministic stimulus shared by

* ``scripts/capture_memory_golden.py`` — run once against the
  pre-refactor model to produce ``tests/data/memory_parity_golden.json``
  (checked in), and
* ``tests/memory/test_parity_golden.py`` — re-runs the same stimulus on
  the current engine and compares every recorded latency and counter.

Nothing here may depend on wall-clock time, hashing order, or any other
non-determinism: the same code must produce the same record stream on
both sides of the refactor.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List

from repro.common.params import (
    CacheParams,
    MemoryParams,
    SystemParams,
)
from repro.common.types import SchemeKind
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.config import RunConfig
from repro.sim.runner import TraceCache, run_benchmark
from repro.workloads import get_benchmark

__all__ = [
    "ACCESS_CONFIGS",
    "GOLDEN_PATH",
    "RUN_CELLS",
    "capture_golden",
    "drive_accesses",
    "run_cells",
]

#: Repo-relative location of the checked-in golden file.
GOLDEN_PATH = "tests/data/memory_parity_golden.json"


def _tiny_memory(**overrides: Any) -> MemoryParams:
    """A small hierarchy so the stimulus provokes evictions and misses."""
    base = dict(
        l1=CacheParams(size_bytes=8 * 64, ways=2, latency=2),
        l2=CacheParams(size_bytes=32 * 64, ways=4, latency=6),
        llc=CacheParams(size_bytes=128 * 64, ways=4, latency=16),
        dram_latency=100,
        noc_hop_latency=4,
    )
    base.update(overrides)
    return MemoryParams(**base)


def _access_config(name: str) -> SystemParams:
    if name == "default_1core":
        return SystemParams()
    if name == "tiny_1core":
        return SystemParams(memory=_tiny_memory())
    if name == "tiny_2core":
        return SystemParams(memory=_tiny_memory(), num_cores=2)
    if name == "mesh_2x2_4core":
        return SystemParams(
            memory=_tiny_memory(topology="mesh", mesh_rows=2, mesh_cols=2),
            num_cores=4,
        )
    if name == "preserve_inv_2core":
        return SystemParams(
            memory=_tiny_memory(),
            num_cores=2,
            preserve_invalidated_reveals=True,
        )
    if name == "prefetch_1core":
        return SystemParams(memory=_tiny_memory(prefetch_next_line=True))
    raise KeyError(name)


#: Direct-hierarchy stimulus configurations, by name.
ACCESS_CONFIGS = (
    "default_1core",
    "tiny_1core",
    "tiny_2core",
    "mesh_2x2_4core",
    "preserve_inv_2core",
    "prefetch_1core",
)


def drive_accesses(name: str, ops: int = 500, seed: int = 1234) -> List[Any]:
    """Drive a scripted read/write/reveal mix; return one record per op.

    Records are JSON-comparable: ``[kind, core, addr, now, outcome...]``.
    The address stream mixes a hot set (re-references, hit-under-fill)
    with a cold sweep (misses, evictions) across all cores.
    """
    params = _access_config(name)
    hier = MemoryHierarchy(params)
    rng = random.Random(seed)
    hot = [i * 64 for i in range(16)]
    records: List[Any] = []
    now = 0
    for i in range(ops):
        core = rng.randrange(params.num_cores)
        # Bias toward the hot set so fills overlap with re-references.
        if rng.random() < 0.6:
            addr = rng.choice(hot) + rng.randrange(8) * 8
        else:
            addr = rng.randrange(0x8000) & ~0x7
        roll = rng.random()
        if roll < 0.55:
            result = hier.read(core, addr, now=now)
            records.append(
                ["read", core, addr, now, result.latency,
                 int(result.revealed), int(result.level)]
            )
        elif roll < 0.75:
            latency = hier.write(core, addr, now=now)
            records.append(["write", core, addr, now, latency])
        elif roll < 0.9:
            ok = hier.reveal(core, addr)
            records.append(["reveal", core, addr, now, int(ok)])
        else:
            latency = hier.read_invisible(core, addr, now=now)
            records.append(["inv", core, addr, now, latency])
        # Sometimes advance time (fills land), sometimes issue back-to-back.
        if rng.random() < 0.5:
            now += rng.choice((1, 2, 5, 40, 400))
    hier.check_coherence_invariants()
    records.append(["dropped_reveals", hier.dropped_reveals])
    records.append(["noc_messages", hier.noc.messages])
    records.append(["noc_bitvector_messages", hier.noc.bitvector_messages])
    records.append(["dram_reads", hier.dram.reads])
    records.append(["dram_writebacks", hier.dram.writebacks])
    return records


#: Benchmark cells for end-to-end parity: (suite, name, scheme, length,
#: threads, params-variant).  Variants must exist in _cell_params.
RUN_CELLS = (
    ("spec2017", "mcf", "unsafe", 2500, 1, "default"),
    ("spec2017", "mcf", "stt", 2500, 1, "default"),
    ("spec2017", "mcf", "stt+recon", 2500, 1, "default"),
    ("spec2017", "mcf", "nda+recon", 2500, 1, "default"),
    ("spec2017", "mcf", "invispec+recon", 2000, 1, "default"),
    ("spec2017", "gcc", "unsafe", 2500, 1, "default"),
    ("spec2017", "gcc", "stt+recon", 2500, 1, "default"),
    ("spec2017", "lbm", "unsafe", 2000, 1, "prefetch"),
    ("parsec", "canneal", "unsafe", 1000, 4, "default"),
    ("parsec", "canneal", "stt+recon", 1000, 4, "default"),
    ("parsec", "fluidanimate", "stt+recon", 1000, 4, "mesh"),
    ("spec2017", "omnetpp", "dom+recon", 2000, 1, "default"),
)


def _cell_params(variant: str, threads: int) -> SystemParams:
    if variant == "default":
        return SystemParams(num_cores=threads)
    if variant == "prefetch":
        return SystemParams(
            num_cores=threads,
            memory=dataclasses.replace(
                MemoryParams(), prefetch_next_line=True
            ),
        )
    if variant == "mesh":
        return SystemParams(
            num_cores=threads,
            memory=dataclasses.replace(
                MemoryParams(), topology="mesh", mesh_rows=2, mesh_cols=2
            ),
        )
    raise KeyError(variant)


def _cell_label(cell) -> str:
    suite, name, scheme, length, threads, variant = cell
    return f"{suite}/{name}/{scheme}/len{length}/t{threads}/{variant}"


def run_cells() -> Dict[str, Dict[str, Any]]:
    """Run every benchmark cell; return label -> {cycles, stats}."""
    out: Dict[str, Dict[str, Any]] = {}
    cache = TraceCache()
    for cell in RUN_CELLS:
        suite, name, scheme, length, threads, variant = cell
        profile = get_benchmark(suite, name)
        config = RunConfig(
            params=_cell_params(variant, threads),
            threads=threads,
            cache=cache,
        )
        result = run_benchmark(
            profile, SchemeKind(scheme), length, config=config
        )
        out[_cell_label(cell)] = {
            "cycles": result.cycles,
            "stats": result.stats.as_dict(),
        }
    return out


def capture_golden() -> Dict[str, Any]:
    """The full golden payload (access sequences + benchmark cells)."""
    return {
        "accesses": {name: drive_accesses(name) for name in ACCESS_CONFIGS},
        "runs": run_cells(),
    }
