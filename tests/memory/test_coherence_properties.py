"""Property-based tests for MESI + reveal/conceal soundness.

The central security property of ReCon's storage layer: once a word has
been stored to, **no core may ever observe it as revealed** until a new
load pair reveals it again.  A violation would let a secure scheme lift
defenses for a value that is still secret.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import CacheParams, MemoryParams, SystemParams, word_addr
from repro.memory import MemoryHierarchy


def tiny_params(num_cores):
    memory = MemoryParams(
        l1=CacheParams(size_bytes=4 * 64, ways=2, latency=2),
        l2=CacheParams(size_bytes=8 * 64, ways=2, latency=6),
        llc=CacheParams(size_bytes=16 * 64, ways=2, latency=16),
        dram_latency=50,
        noc_hop_latency=2,
    )
    return SystemParams(memory=memory, num_cores=num_cores)


# An operation: (kind, core, word index in a small pool)
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "reveal"]),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=23),
    ),
    min_size=1,
    max_size=120,
)


def word_pool(index):
    """24 words spread over 12 lines so evictions and sharing both happen."""
    line = index // 2
    word = index % 2
    return line * 64 + word * 8


class TestConcealSoundness:
    @given(ops=ops_strategy)
    @settings(max_examples=120, deadline=None)
    def test_no_read_observes_a_concealed_word_as_revealed(self, ops):
        hier = MemoryHierarchy(tiny_params(num_cores=2))
        # Oracle: a word may be observed revealed only if some reveal
        # succeeded after the most recent store to it.
        may_be_revealed = {}
        now = 0
        for kind, core, index in ops:
            addr = word_pool(index)
            now += 200  # generous spacing: fills always land
            if kind == "read":
                result = hier.read(core, addr, now=now)
                if result.revealed:
                    assert may_be_revealed.get(word_addr(addr), False), (
                        f"word {addr:#x} observed revealed after a store"
                    )
            elif kind == "write":
                hier.write(core, addr, now=now)
                may_be_revealed[word_addr(addr)] = False
            else:  # reveal
                if hier.reveal(core, addr):
                    may_be_revealed[word_addr(addr)] = True
        hier.check_coherence_invariants()

    @given(ops=ops_strategy)
    @settings(max_examples=80, deadline=None)
    def test_mesi_invariants_hold_throughout(self, ops):
        hier = MemoryHierarchy(tiny_params(num_cores=2))
        now = 0
        for kind, core, index in ops:
            addr = word_pool(index)
            now += 200
            if kind == "read":
                hier.read(core, addr, now=now)
            elif kind == "write":
                hier.write(core, addr, now=now)
            else:
                hier.reveal(core, addr)
            hier.check_coherence_invariants()

    @given(ops=ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_latencies_are_always_positive_and_bounded(self, ops):
        hier = MemoryHierarchy(tiny_params(num_cores=2))
        now = 0
        # Upper bound: DRAM + all levels + invalidating every other core
        # + a handful of hops can never exceed this.
        bound = 50 + 16 + 6 + 2 + 2 * 6 + 10 * 2
        for kind, core, index in ops:
            addr = word_pool(index)
            now += 500
            if kind == "read":
                latency = hier.read(core, addr, now=now).latency
            elif kind == "write":
                latency = hier.write(core, addr, now=now)
            else:
                continue
            assert 0 < latency <= bound
