"""Multicore coherence scenarios beyond the basic two-core cases."""

from repro.common import (
    CacheParams,
    MemoryParams,
    MESIState,
    StatSet,
    SystemParams,
)
from repro.memory import MemoryHierarchy


def params(num_cores=4):
    memory = MemoryParams(
        l1=CacheParams(size_bytes=8 * 64, ways=2, latency=2),
        l2=CacheParams(size_bytes=16 * 64, ways=4, latency=6),
        llc=CacheParams(size_bytes=64 * 64, ways=4, latency=16),
        dram_latency=100,
        noc_hop_latency=4,
    )
    return SystemParams(memory=memory, num_cores=num_cores)


class TestFourCoreSharing:
    def test_reveal_reaches_all_readers_through_directory(self):
        hier = MemoryHierarchy(params())
        hier.read(0, 0x0)
        hier.reveal(0, 0x0)
        # Evict from core 0's private hierarchy (L1: 4 sets, L2: 4 sets).
        for i in range(1, 6):
            hier.read(0, i * 4 * 64)
        for core in (1, 2, 3):
            assert hier.read(core, 0x0).revealed, f"core {core} missed reveal"
        hier.check_coherence_invariants()

    def test_write_invalidates_every_sharer(self):
        hier = MemoryHierarchy(params())
        stats = [StatSet() for _ in range(4)]
        for core in range(4):
            hier.attach_stats(core, stats[core])
            hier.read(core, 0x0)
        hier.write(3, 0x0)
        for core in (0, 1, 2):
            assert stats[core].invalidations == 1
            assert hier.private_line(core, 0x0) is None
        hier.check_coherence_invariants()

    def test_ownership_migrates_between_writers(self):
        hier = MemoryHierarchy(params())
        hier.write(0, 0x0)
        hier.write(1, 0x0)
        hier.write(2, 0x0)
        line = hier.llc_line(0x0)
        assert line is not None and line.owner == 2
        owned = hier.private_line(2, 0x0)
        assert owned is not None and owned.state is MESIState.MODIFIED
        hier.check_coherence_invariants()

    def test_vector_passes_writer_to_writer(self):
        """Rule iii of §5.3: invalidation passes the vector to the writer."""
        hier = MemoryHierarchy(params())
        hier.write(0, 0x0)       # core 0 owns, conceals word 0
        hier.read(0, 0x8)        # (same line already present)
        hier.reveal(0, 0x8)      # core 0 reveals word 1
        hier.write(1, 0x0)       # core 1 takes over, conceals word 0
        # Word 1's reveal traveled with the ownership transfer.
        assert hier.read(1, 0x8, now=500).revealed
        assert not hier.read(1, 0x0, now=500).revealed

    def test_reader_after_writer_gets_writers_vector(self):
        hier = MemoryHierarchy(params())
        hier.write(0, 0x0)
        hier.reveal(0, 0x8)
        result = hier.read(1, 0x8)  # downgrade: owner supplies the vector
        assert result.revealed
        hier.check_coherence_invariants()

    def test_rotating_producer_consumer(self):
        """Cores take turns writing and reading one line; invariants hold
        and conceal soundness is preserved at every step."""
        hier = MemoryHierarchy(params())
        now = 0
        for round_no in range(8):
            writer = round_no % 4
            reader = (round_no + 1) % 4
            now += 300
            hier.write(writer, 0x40, now=now)
            now += 300
            assert not hier.read(reader, 0x40, now=now).revealed
            hier.reveal(reader, 0x40)
            now += 300
            assert hier.read(reader, 0x40, now=now).revealed
            hier.check_coherence_invariants()

    def test_false_sharing_conceals_only_written_word(self):
        hier = MemoryHierarchy(params())
        hier.read(0, 0x0)
        hier.read(0, 0x8)
        hier.reveal(0, 0x0)
        hier.reveal(0, 0x8)
        # Push core 0's vector to the directory, then core 1 writes word 0.
        for i in range(1, 6):
            hier.read(0, i * 4 * 64)
        hier.write(1, 0x0)
        assert not hier.read(2, 0x0, now=2000).revealed
        assert hier.read(2, 0x8, now=2000).revealed  # untouched word survives


class TestDirectoryAccounting:
    def test_traffic_counters_grow_with_sharing(self):
        hier = MemoryHierarchy(params())
        stats = [StatSet() for _ in range(4)]
        for core in range(4):
            hier.attach_stats(core, stats[core])
        for core in range(4):
            hier.read(core, 0x0)
        hier.write(0, 0x0)
        total_coherence = sum(s.coherence_transactions for s in stats)
        assert total_coherence >= 5  # 4 GetS + 1 GetM at minimum
        assert hier.noc.messages > 0
        assert hier.noc.bitvector_messages > 0
