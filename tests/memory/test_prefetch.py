"""Tests for the next-line prefetcher and its ReCon interaction."""

import dataclasses

import pytest

from repro.common import CacheLevel, CacheParams, MemoryParams, SystemParams
from repro.memory import MemoryHierarchy


def params(prefetch=True, num_cores=1):
    memory = MemoryParams(
        l1=CacheParams(size_bytes=8 * 64, ways=2, latency=2),
        l2=CacheParams(size_bytes=32 * 64, ways=4, latency=6),
        llc=CacheParams(size_bytes=128 * 64, ways=4, latency=16),
        dram_latency=100,
        noc_hop_latency=4,
        prefetch_next_line=prefetch,
    )
    return SystemParams(memory=memory, num_cores=num_cores)


class TestNextLinePrefetch:
    def test_sequential_stream_hits_l2(self):
        hier = MemoryHierarchy(params(prefetch=True))
        hier.read(0, 0x0)           # miss; prefetches 0x40 into L2
        result = hier.read(0, 0x40, now=500)
        assert result.level is CacheLevel.L2

    def test_disabled_by_default(self):
        assert SystemParams().memory.prefetch_next_line is False
        hier = MemoryHierarchy(params(prefetch=False))
        hier.read(0, 0x0)
        assert hier.read(0, 0x40, now=500).level is CacheLevel.LLC

    def test_prefetch_carries_reveal_vector(self):
        """ReCon state arrives with the prefetch, like any other fill."""
        hier = MemoryHierarchy(params(prefetch=True, num_cores=2))
        # Core 1 reveals a word in line 0x40 and pushes it to the directory.
        hier.read(1, 0x40)
        hier.reveal(1, 0x40)
        for i in range(1, 6):
            hier.read(1, 0x40 + i * 2 * 64)  # evict from core 1 (L1 2 sets? use L2 spread)
        for i in range(1, 10):
            hier.read(1, 0x2000 + i * 4 * 64)
        # Make sure the vector reached the directory.
        # Core 0 misses on 0x0: 0x40 is prefetched with the directory vector.
        hier.read(0, 0x0)
        result = hier.read(0, 0x40, now=500)
        if result.level is CacheLevel.L2:
            assert result.revealed

    def test_prefetch_does_not_disturb_remote_owner(self):
        hier = MemoryHierarchy(params(prefetch=True, num_cores=2))
        hier.write(1, 0x40)  # core 1 owns line 0x40 in M
        hier.read(0, 0x0)    # core 0's prefetch of 0x40 must be dropped
        line = hier.private_line(1, 0x40, CacheLevel.L1)
        assert line is not None  # owner untouched
        assert hier.private_line(0, 0x40, CacheLevel.L2) is None
        hier.check_coherence_invariants()

    def test_invariants_hold_with_prefetching(self):
        hier = MemoryHierarchy(params(prefetch=True, num_cores=2))
        for i in range(60):
            hier.read(i % 2, (i * 0x40) % 0x1800, now=i * 200)
            if i % 5 == 0:
                hier.write((i + 1) % 2, (i * 0x40) % 0x1800, now=i * 200 + 100)
            hier.check_coherence_invariants()

    def test_prefetch_improves_streaming_performance(self):
        from repro.common import SchemeKind
        from repro.sim import RunConfig
        from repro.sim.runner import TraceCache, run_benchmark
        from repro.workloads import get_benchmark

        profile = get_benchmark("spec2017", "lbm")
        off = run_benchmark(
            profile, SchemeKind.UNSAFE, 4000,
            config=RunConfig(params=SystemParams(), cache=TraceCache()),
        )
        on = run_benchmark(
            profile, SchemeKind.UNSAFE, 4000,
            config=RunConfig(
                params=SystemParams(
                    memory=dataclasses.replace(
                        SystemParams().memory, prefetch_next_line=True
                    )
                ),
                cache=TraceCache(),
            ),
        )
        assert on.cycles < off.cycles
