"""Unit tests for the program-builder DSL and its interpreter semantics."""

import pytest

from repro.common import MemPrediction, OpClass
from repro.isa import MicroOp, Program, default_memory_value


class TestMicroOp:
    def test_load_requires_address(self):
        with pytest.raises(ValueError):
            MicroOp(OpClass.LOAD, dest=1)

    def test_load_requires_dest(self):
        with pytest.raises(ValueError):
            MicroOp(OpClass.LOAD, addr=0x100)

    def test_store_requires_address(self):
        with pytest.raises(ValueError):
            MicroOp(OpClass.STORE, srcs=(1,))

    def test_classification(self):
        load = MicroOp(OpClass.LOAD, dest=1, addr=0x100)
        assert load.is_load and not load.is_store and not load.is_branch
        branch = MicroOp(OpClass.BRANCH, srcs=(1,))
        assert branch.is_branch


class TestProgramInterpreter:
    def test_li_then_load_reads_poked_memory(self):
        prog = Program()
        prog.poke(0x2000, 0xDEAD)
        prog.li(1, 0x2000)
        op = prog.load(2, base=1)
        assert op.addr == 0x2000
        assert op.value == 0xDEAD
        assert prog.regs[2] == 0xDEAD

    def test_pointer_dereference_chain_is_real(self):
        """A built load pair really dereferences the loaded pointer."""
        prog = Program()
        prog.poke(0x1000, 0x2000)  # [0x1000] holds a pointer to 0x2000
        prog.poke(0x2000, 42)
        prog.li(1, 0x1000)
        first = prog.load(2, base=1)
        second = prog.load(3, base=2)
        assert first.value == 0x2000
        assert second.addr == 0x2000
        assert second.value == 42

    def test_load_with_offset(self):
        prog = Program()
        prog.poke(0x3010, 7)
        prog.li(1, 0x3000)
        op = prog.load(2, base=1, offset=0x10)
        assert op.addr == 0x3010
        assert op.value == 7

    def test_store_updates_image_for_later_loads(self):
        prog = Program()
        prog.li(1, 0x4000)
        prog.li(2, 99)
        prog.store(2, base=1)
        prog.li(3, 0x4000)
        op = prog.load(4, base=3)
        assert op.value == 99

    def test_store_splits_address_and_data_sources(self):
        prog = Program()
        prog.li(1, 0x4000)
        prog.li(2, 99)
        op = prog.store(2, base=1)
        assert op.srcs == (1,)  # address-forming registers only
        assert op.data_srcs == (2,)
        assert op.addr == 0x4000

    def test_store_abs_has_no_address_sources(self):
        prog = Program()
        prog.li(2, 99)
        op = prog.store_abs(2, 0x4000)
        assert op.srcs == ()
        assert op.data_srcs == (2,)

    def test_data_srcs_rejected_outside_stores(self):
        from repro.isa import MicroOp

        with pytest.raises(ValueError):
            MicroOp(OpClass.ALU, dest=1, data_srcs=(2,))

    def test_unwritten_memory_is_deterministic(self):
        assert default_memory_value(0x123458) == default_memory_value(0x123458)
        prog_a, prog_b = Program(), Program()
        prog_a.li(1, 0x5000)
        prog_b.li(1, 0x5000)
        assert prog_a.load(2, 1).value == prog_b.load(2, 1).value

    def test_sub_word_peek_reads_containing_word(self):
        prog = Program()
        prog.poke(0x6000, 5)
        assert prog.peek(0x6003) == 5

    def test_seq_numbers_are_dense(self):
        prog = Program()
        prog.li(1, 1)
        prog.nop()
        prog.branch(1)
        assert [op.seq for op in prog] == [0, 1, 2]

    def test_pc_autoincrements_and_can_be_pinned(self):
        prog = Program(base_pc=0x400)
        a = prog.li(1, 1)
        b = prog.li(2, 2)
        c = prog.li(3, 3, pc=a.pc)
        assert b.pc == a.pc + 4
        assert c.pc == a.pc

    def test_alu_mixes_sources_deterministically(self):
        prog = Program()
        prog.li(1, 10)
        prog.li(2, 20)
        op1 = prog.alu(3, 1, 2)
        prog2 = Program()
        prog2.li(1, 10)
        prog2.li(2, 20)
        op2 = prog2.alu(3, 1, 2)
        assert op1.value == op2.value

    def test_add_imm_is_exact_pointer_arithmetic(self):
        prog = Program()
        prog.li(1, 0x7000)
        prog.add_imm(2, 1, 0x10)
        assert prog.regs[2] == 0x7010

    def test_register_namespace_enforced(self):
        prog = Program(arch_regs=4)
        with pytest.raises(ValueError):
            prog.li(4, 0)
        with pytest.raises(ValueError):
            prog.load(0, base=9)

    def test_alu_rejects_memory_opclass(self):
        prog = Program()
        with pytest.raises(ValueError):
            prog.alu(1, opclass=OpClass.LOAD)

    def test_forced_prediction_carried(self):
        prog = Program()
        prog.li(1, 0x8000)
        op = prog.load(2, base=1, forced_prediction=MemPrediction.STF)
        assert op.forced_prediction is MemPrediction.STF

    def test_branch_mispredict_flag(self):
        prog = Program()
        prog.li(1, 0)
        op = prog.branch(1, mispredict=True)
        assert op.mispredict
