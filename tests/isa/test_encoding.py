"""Unit and property tests for trace serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import MemPrediction, OpClass
from repro.isa import Program
from repro.isa.encoding import dumps, load_trace, loads, save_trace


def sample_program():
    prog = Program()
    prog.poke(0x1000, 0x2000)
    prog.li(1, 0x1000)
    prog.load(2, base=1)
    prog.load(3, base=2, forced_prediction=MemPrediction.STF)
    prog.load_indexed(4, base=2, index=1)
    prog.alu(5, 3, 4)
    prog.store(5, base=1, offset=8)
    prog.store_abs(5, 0x9000)
    prog.branch(5, mispredict=True)
    prog.nop()
    return prog


def assert_equivalent(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.opclass == y.opclass
        assert x.pc == y.pc
        assert x.dest == y.dest
        assert x.srcs == y.srcs
        assert x.data_srcs == y.data_srcs
        assert x.addr == y.addr
        assert x.value == y.value
        assert x.mispredict == y.mispredict
        assert x.forced_prediction == y.forced_prediction
        assert x.seq == y.seq


class TestRoundTrip:
    def test_string_round_trip(self):
        trace = sample_program().trace()
        assert_equivalent(trace, loads(dumps(trace)))

    def test_file_round_trip(self, tmp_path):
        trace = sample_program().trace()
        path = tmp_path / "trace.txt"
        save_trace(trace, path)
        assert_equivalent(trace, load_trace(path))

    def test_empty_trace(self):
        assert loads(dumps([])) == []

    def test_workload_trace_round_trip(self):
        from repro.workloads import build_trace, get_benchmark

        trace = build_trace(get_benchmark("spec2017", "gcc"), 600).trace()
        assert_equivalent(trace, loads(dumps(trace)))

    def test_loaded_trace_simulates_identically(self):
        from repro.common import SchemeKind, StatSet, SystemParams
        from repro.core import Core
        from repro.memory import MemoryHierarchy
        from repro.security import make_policy
        from repro.workloads import build_trace, get_benchmark

        trace = build_trace(get_benchmark("spec2017", "xalancbmk"), 800).trace()
        reloaded = loads(dumps(trace))

        def run(t):
            params = SystemParams()
            stats = StatSet()
            core = Core(
                0, params, t, MemoryHierarchy(params),
                make_policy(SchemeKind.STT_RECON, stats), stats,
            )
            core.run()
            return stats

        assert run(trace).as_dict() == run(reloaded).as_dict()


class TestErrors:
    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            loads("")
        with pytest.raises(ValueError):
            loads('{"format": "other"}\n')

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError):
            loads('{"format": "repro-trace", "version": 99, "count": 0}\n')

    def test_rejects_count_mismatch(self):
        text = dumps(sample_program().trace())
        truncated = "\n".join(text.splitlines()[:-2]) + "\n"
        with pytest.raises(ValueError):
            loads(truncated)

    def test_rejects_malformed_line(self):
        header = '{"format": "repro-trace", "version": 1, "count": 1}'
        with pytest.raises(ValueError):
            loads(header + "\nnot enough fields\n")
        with pytest.raises(ValueError):
            loads(header + "\nwarp 0 - - - - 0 -\n")


class TestPropertyRoundTrip:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["li", "load", "store", "branch", "alu"]),
                st.integers(min_value=1, max_value=7),
                st.integers(min_value=0, max_value=0xFFFF),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_programs_round_trip(self, ops):
        prog = Program()
        prog.li(1, 0x1000)
        for kind, reg, value in ops:
            if kind == "li":
                prog.li(reg, value * 8)
            elif kind == "load":
                prog.load(reg, base=1)
            elif kind == "store":
                prog.store(reg, base=1)
            elif kind == "branch":
                prog.branch(reg, mispredict=value % 2 == 0)
            else:
                prog.alu(reg, 1)
        trace = prog.trace()
        assert_equivalent(trace, loads(dumps(trace)))
