"""Sampling option flow through the sweep service.

Covers the full route of the ``"sampling"`` job option: submit-time
validation (a bad spec is a 400, not a failed job), the option reaching
``repro.api.run_suite`` for every cell, records in the job result
carrying the estimates, write-ahead-ledger persistence across a service
restart, and the HTTP client's ``submit_suite(sampling=...)`` payload.
"""

import asyncio
import json
import threading
import time

import pytest

pytestmark = pytest.mark.service

from repro.api import RunRequest, result, submit_suite
from repro.sampling import SamplingConfig
from repro.sim.engine import SuiteResult
from repro.sim.service import SweepService, _serve_async, _wire_options

SPEC = "ci=0.02,conf=0.95"


def _cells(schemes=("unsafe", "stt")):
    return [
        {"benchmark": "spec2017/mcf", "scheme": scheme, "length": 400}
        for scheme in schemes
    ]


def _wait_done(service, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = service.get(job_id)
        if job is not None and job.done:
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


class TestSubmitValidation:
    def test_bad_spec_rejected_at_submit(self):
        service = SweepService(
            jobs=1, backend="inline", store=False, start_workers=False
        )
        try:
            with pytest.raises(ValueError, match="unknown sampling option"):
                service.submit_job(_cells(), {"sampling": "frobnicate=1"})
            with pytest.raises(ValueError, match="bad value"):
                service.submit_job(_cells(), {"sampling": "ci=lots"})
        finally:
            service.close()

    def test_wire_options_carry_sampling(self):
        wired = _wire_options(
            {"jobs": 2, "sampling": SPEC, "telemetry": None}
        )
        assert wired == {"jobs": 2, "sampling": SPEC}
        assert _wire_options({"sampling": None}) == {}


class TestOptionFlow:
    def test_sampling_reaches_run_suite_per_cell(self, monkeypatch):
        """Every cell's run_suite call gets the job's sampling spec."""
        seen = []

        import repro.api as api_mod

        real_run_suite = api_mod.run_suite

        def spying_run_suite(requests, **kwargs):
            seen.append(kwargs.get("sampling"))
            return real_run_suite(requests, **kwargs)

        monkeypatch.setattr(api_mod, "run_suite", spying_run_suite)
        monkeypatch.setenv("REPRO_STORE", "off")
        service = SweepService(jobs=1, backend="inline", store=False)
        try:
            job = service.submit(_cells(), {"sampling": SPEC})
            finished = _wait_done(service, job.job_id)
        finally:
            service.close()
        assert finished.status == "done"
        assert seen == [SPEC, SPEC]  # one call per cell, spec intact

    def test_sampled_job_records_estimates(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        service = SweepService(jobs=1, backend="inline", store=False)
        try:
            job = service.submit(_cells(), {"sampling": "on"})
            finished = _wait_done(service, job.job_id)
        finally:
            service.close()
        assert finished.status == "done"
        suite = SuiteResult.from_json(finished.result_json)
        assert len(suite.records) == 2
        for record in suite.records:
            assert record.estimated
            assert record.samples >= 2
            assert record.ipc_ci > 0.0


class TestRestartRecovery:
    def test_sampling_option_survives_restart(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        state = tmp_path / "state"
        first = SweepService(
            backend="inline", start_workers=False, state_dir=state
        )
        job = first.submit(_cells(), {"sampling": SPEC})
        del first  # abandoned, nothing flushed beyond the ledger

        second = SweepService(
            backend="inline", start_workers=False, state_dir=state
        )
        try:
            recovered = second.get(job.job_id)
            assert recovered is not None
            assert recovered.recovered
            assert recovered.options.get("sampling") == SPEC
            second.start_workers()
            finished = _wait_done(second, job.job_id)
        finally:
            second.close()
        suite = SuiteResult.from_json(finished.result_json)
        assert all(record.estimated for record in suite.records)


class TestHttpClient:
    @pytest.fixture
    def server(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        service = SweepService(jobs=1, backend="inline", store=False)
        ready = threading.Event()
        bound = []
        loop_holder = {}

        def run():
            loop = asyncio.new_event_loop()
            loop_holder["loop"] = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(
                    _serve_async(
                        service, "127.0.0.1", 0, ready=ready, bound=bound
                    )
                )
            except asyncio.CancelledError:
                pass
            finally:
                loop.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(10), "service failed to start"
        host, port = bound[0]
        yield f"http://{host}:{port}"
        loop = loop_holder.get("loop")
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(
                lambda: [task.cancel() for task in asyncio.all_tasks(loop)]
            )
        service.close()

    def test_submit_suite_sampling_round_trip(self, server):
        requests = [
            RunRequest("spec2017/mcf", scheme, 400)
            for scheme in ("unsafe", "stt")
        ]
        job = submit_suite(requests, url=server, sampling=SamplingConfig())
        suite = result(job, url=server, timeout_s=120)
        assert len(suite.records) == 2
        for record in suite.records:
            assert record.estimated
            assert record.ipc_ci > 0.0
        # Record JSON keeps the sampling fields through the wire format.
        payload = json.loads(suite.to_json())
        assert all(r["estimated"] for r in payload["records"])

    def test_submit_suite_rejects_bad_spec_locally(self, server):
        with pytest.raises(ValueError, match="unknown sampling option"):
            submit_suite(
                [RunRequest("spec2017/mcf", "unsafe", 400)],
                url=server,
                sampling="zorp=3",
            )
