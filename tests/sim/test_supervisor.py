"""Tests for the fault-tolerant supervision layer.

Pool tests spawn real worker processes and genuinely crash/hang them;
lengths are kept tiny so each run is milliseconds of simulation.
"""

import random

import pytest

from repro.common import SchemeKind
from repro.sim import RunConfig, run_grid
from repro.sim.chaos import ChaosConfig
from repro.sim.engine import RunSpec
from repro.sim.runner import run_benchmark
from repro.sim.store import ResultStore
from repro.sim.supervisor import (
    CorruptResultError,
    FaultPolicy,
    RunFailure,
    Supervisor,
    _parse_payload,
    _validate_result,
)
from repro.workloads import get_benchmark

LENGTH = 600
SCHEMES = (SchemeKind.UNSAFE, SchemeKind.STT)


def _profiles():
    return [
        get_benchmark("spec2017", "mcf"),
        get_benchmark("spec2017", "gcc"),
    ]


def _specs(config=None):
    config = config or RunConfig()
    return [
        RunSpec.build(profile, scheme, LENGTH, config)
        for profile in _profiles()
        for scheme in SCHEMES
    ]


def _grid(chaos, policy, jobs, **kwargs):
    return run_grid(
        _profiles(),
        SCHEMES,
        LENGTH,
        config=RunConfig(chaos=chaos),
        policy=policy,
        jobs=jobs,
        **kwargs,
    )


class TestFaultPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(timeout_s=0)
        with pytest.raises(ValueError):
            FaultPolicy(retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(backoff_s=-1)
        with pytest.raises(ValueError):
            FaultPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            FaultPolicy(max_pool_restarts=-1)

    def test_backoff_grows_and_caps(self):
        policy = FaultPolicy(backoff_s=0.1, backoff_cap_s=0.4, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.backoff_for(a, rng) for a in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_adds_bounded_fraction(self):
        policy = FaultPolicy(backoff_s=1.0, backoff_cap_s=1.0, jitter=0.5)
        rng = random.Random(0)
        for _ in range(20):
            assert 1.0 <= policy.backoff_for(1, rng) <= 1.5


class TestRunFailure:
    def test_dict_round_trip(self):
        failure = RunFailure(
            bench="mcf",
            scheme=SchemeKind.STT,
            seed=7,
            key="ab" * 32,
            error_type="MemoryError",
            message="boom",
            traceback="Traceback ...",
            attempts=3,
            worker_pid=1234,
            wall_time_s=0.5,
            diagnostics={"cycle": 10},
        )
        clone = RunFailure.from_dict(failure.as_dict())
        assert clone == failure
        assert clone.scheme is SchemeKind.STT


class TestPayloadValidation:
    def test_malformed_payloads_raise(self):
        for payload in (None, {}, {"chaos": "corrupt payload"}, (), ("ok",)):
            with pytest.raises(CorruptResultError):
                _parse_payload(payload)

    def test_ok_and_error_envelopes_pass(self):
        ok = ("ok", object(), 0.1, 42)
        assert _parse_payload(ok) == ok
        err = ("error", "ValueError", "m", "tb", None, 0.1, 42)
        assert _parse_payload(err) == err

    def test_result_validation_rejects_mismatches(self):
        spec = _specs()[0]
        result = run_benchmark(
            spec.profile, spec.scheme, LENGTH
        )
        assert _validate_result(spec, result) is result
        with pytest.raises(CorruptResultError):
            _validate_result(spec, "not a result")
        other = _specs()[1]  # same profile, different scheme
        with pytest.raises(CorruptResultError):
            _validate_result(other, result)


class TestInlineSupervision:
    def test_no_faults_matches_unsupervised_run(self):
        plain = run_grid(_profiles(), SCHEMES, LENGTH, jobs=1)
        supervised = _grid(None, FaultPolicy(), jobs=1)
        assert supervised.ok
        assert set(plain) == set(supervised)
        for key in plain:
            assert plain[key].stats.as_dict() == supervised[key].stats.as_dict()

    def test_transient_fault_recovers_via_retry(self):
        chaos = ChaosConfig(seed=2, oom=1.0, faulty_attempts=1)
        suite = _grid(
            chaos, FaultPolicy(retries=2, backoff_s=0.001), jobs=1
        )
        assert suite.ok
        assert suite.fault_counters["fault_retries"] == len(_specs())
        assert "fault_exhausted" not in suite.fault_counters

    def test_permanent_fault_exhausts_into_failure_records(self):
        chaos = ChaosConfig(seed=2, oom=1.0)  # every attempt fails
        suite = _grid(
            chaos, FaultPolicy(retries=1, backoff_s=0.001), jobs=1
        )
        assert not suite.ok
        assert len(suite.failures) == len(_specs())
        assert len(suite) == 0  # no cell produced a result
        for failure in suite.failures:
            assert failure.error_type == "MemoryError"
            assert failure.attempts == 2  # 1 initial + 1 retry
            assert "chaos" in failure.message
        assert suite.fault_counters["fault_exhausted"] == len(_specs())

    def test_failures_follow_spec_order(self):
        chaos = ChaosConfig(seed=2, oom=1.0)
        suite = _grid(chaos, FaultPolicy(retries=0), jobs=1)
        expected = [
            (p.name, s) for p in _profiles() for s in SCHEMES
        ]
        assert [(f.bench, f.scheme) for f in suite.failures] == expected

    def test_corrupt_payload_detected_inline(self):
        chaos = ChaosConfig(seed=2, corrupt=1.0, faulty_attempts=1)
        suite = _grid(
            chaos, FaultPolicy(retries=1, backoff_s=0.001), jobs=1
        )
        assert suite.ok
        assert suite.fault_counters["fault_corrupt_payloads"] == len(_specs())

    def test_chaos_results_bypass_the_store(self, tmp_path):
        store = ResultStore(tmp_path)
        chaos = ChaosConfig(seed=2)  # inert, but marks specs as chaos runs
        suite = _grid(chaos, FaultPolicy(), jobs=1, store=store)
        assert suite.ok
        assert len(store) == 0  # nothing persisted
        assert store.hits == 0  # nothing consulted

    def test_determinism_matches_decide(self):
        """The cells that fail are exactly the ones decide() names."""
        chaos = ChaosConfig(seed=2, oom=0.5)
        policy = FaultPolicy(retries=1, backoff_s=0.001)
        expected_failed = {
            (spec.profile.name, spec.scheme)
            for spec in _specs(RunConfig(chaos=chaos))
            if all(
                chaos.decide(spec.key(), attempt) is not None
                for attempt in range(policy.retries + 1)
            )
        }
        suite = _grid(chaos, policy, jobs=1)
        assert {
            (f.bench, f.scheme) for f in suite.failures
        } == expected_failed
        # And the same casualties (modulo timing) on a second run.
        def stable(failure):
            return (
                failure.bench,
                failure.scheme,
                failure.error_type,
                failure.message,
                failure.attempts,
            )

        again = _grid(chaos, policy, jobs=1)
        assert [stable(f) for f in again.failures] == [
            stable(f) for f in suite.failures
        ]


class TestPoolSupervision:
    def test_worker_crash_recovers_and_is_attributed(self):
        chaos = ChaosConfig(seed=2, crash=1.0, faulty_attempts=1)
        suite = _grid(
            chaos,
            FaultPolicy(retries=2, backoff_s=0.001, max_pool_restarts=20),
            jobs=2,
        )
        assert suite.ok
        assert len(suite) == len(_specs())  # no cell lost to the chaos
        counters = suite.fault_counters
        assert counters["fault_worker_crashes"] == len(_specs())
        assert counters["fault_pool_restarts"] >= 1
        assert counters["fault_retries"] == len(_specs())

    def test_permanent_crash_exhausts_with_worker_crash_records(self):
        chaos = ChaosConfig(seed=2, crash=1.0)
        suite = _grid(
            chaos,
            FaultPolicy(
                retries=1, backoff_s=0.001, max_pool_restarts=50
            ),
            jobs=2,
        )
        assert len(suite.failures) == len(_specs())
        kinds = {f.error_type for f in suite.failures}
        # Exhausted in the pool (WorkerCrashError) or after degradation
        # to inline execution (ChaosFault) — both are real outcomes.
        assert kinds <= {"WorkerCrashError", "ChaosFault"}

    def test_degrades_to_inline_after_restart_budget(self):
        chaos = ChaosConfig(seed=2, crash=1.0)  # every pool attempt dies
        suite = _grid(
            chaos,
            FaultPolicy(retries=1, backoff_s=0.001, max_pool_restarts=1),
            jobs=2,
        )
        # Inline chaos crash raises ChaosFault, so the sweep still
        # completes with failure records rather than hanging or raising.
        assert len(suite.failures) == len(_specs())
        assert suite.fault_counters["fault_degraded"] == 1

    def test_hang_trips_timeout_then_retry_succeeds(self):
        chaos = ChaosConfig(
            seed=2, hang=1.0, hang_s=15.0, faulty_attempts=1
        )
        suite = _grid(
            chaos,
            FaultPolicy(timeout_s=1.0, retries=2, backoff_s=0.001),
            jobs=2,
        )
        assert suite.ok
        counters = suite.fault_counters
        assert counters["fault_timeouts"] == len(_specs())
        assert counters["fault_pool_restarts"] >= 1
        assert "fault_exhausted" not in counters

    def test_corrupt_payload_detected_in_pool(self):
        chaos = ChaosConfig(seed=2, corrupt=1.0, faulty_attempts=1)
        suite = _grid(
            chaos, FaultPolicy(retries=2, backoff_s=0.001), jobs=2
        )
        assert suite.ok
        assert suite.fault_counters["fault_corrupt_payloads"] == len(_specs())

    def test_pool_results_match_inline_under_transient_chaos(self):
        chaos = ChaosConfig(seed=2, oom=1.0, faulty_attempts=1)
        policy = FaultPolicy(retries=2, backoff_s=0.001)
        inline = _grid(chaos, policy, jobs=1)
        pooled = _grid(chaos, policy, jobs=2)
        assert inline.ok and pooled.ok
        for key in inline:
            assert inline[key].stats.as_dict() == pooled[key].stats.as_dict()


class TestSupervisorTelemetry:
    def test_fault_events_name_the_failing_specs(self):
        chaos = ChaosConfig(seed=2, oom=1.0)
        config = RunConfig(chaos=chaos)
        supervisor = Supervisor(FaultPolicy(retries=0), jobs=1)
        results, records, failures = supervisor.execute(_specs(config))
        assert len(failures) == len(_specs())
        events = supervisor.fault_events
        assert {e.kind for e in events} == {"exhausted"}
        assert sorted(e.seq for e in events) == list(range(len(_specs())))
        assert all(e.category == "fault" for e in events)

    def test_suite_json_round_trips_failures(self, tmp_path):
        from repro.sim.engine import SuiteResult

        chaos = ChaosConfig(seed=2, oom=0.5)
        suite = _grid(chaos, FaultPolicy(retries=1, backoff_s=0.001), jobs=1)
        path = suite.save(tmp_path / "suite.json")
        loaded = SuiteResult.load(path)
        assert loaded.ok == suite.ok
        assert [f.as_dict() for f in loaded.failures] == [
            f.as_dict() for f in suite.failures
        ]
        assert loaded.fault_counters == suite.fault_counters
        assert set(loaded) == set(suite)
