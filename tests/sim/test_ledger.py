"""Tests for the crash-safe job ledger (repro.sim.ledger).

The ledger is the sweep service's write-ahead source of truth, so the
properties under test are the durability contract itself: append →
replay round trips, torn tails are skipped not fatal, rotation compacts
without losing live jobs, and sidecar writes are atomic.
"""

import json

import pytest

from repro.sim.ledger import (
    JobLedger,
    JobSnapshot,
    durable_write,
    fsync_directory,
)


class TestDurableWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "nested" / "out.json"
        durable_write(path, '{"ok": true}')
        assert path.read_text() == '{"ok": true}'

    def test_replaces_atomically_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "out.json"
        durable_write(path, "old")
        durable_write(path, "new")
        assert path.read_text() == "new"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_directory_fsync_tolerates_missing_dir(self, tmp_path):
        fsync_directory(tmp_path / "does-not-exist")  # must not raise


def _submit(ledger, job_id, key=None, at=1.0):
    ledger.record_submit(
        job_id,
        [{"benchmark": "spec2017/mcf", "scheme": "stt", "length": 300}],
        {"backend": "inline"},
        idempotency_key=key,
        at=at,
    )


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        ledger = JobLedger(tmp_path / "ledger.jsonl")
        _submit(ledger, "job-0001", key="idem-1")
        ledger.record_state("job-0001", "running", at=2.0)
        ledger.record_state(
            "job-0001", "done", result_path="r.json", at=3.0
        )
        snapshots = JobLedger(ledger.path).replay()
        assert set(snapshots) == {"job-0001"}
        snap = snapshots["job-0001"]
        assert snap.status == "done"
        assert snap.terminal
        assert snap.result_path == "r.json"
        assert snap.idempotency_key == "idem-1"
        assert snap.created_at == 1.0
        assert snap.updated_at == 3.0
        assert snap.requests[0]["benchmark"] == "spec2017/mcf"
        assert snap.options == {"backend": "inline"}

    def test_last_state_wins(self, tmp_path):
        ledger = JobLedger(tmp_path / "ledger.jsonl")
        _submit(ledger, "job-0001")
        ledger.record_state("job-0001", "running")
        ledger.record_state("job-0001", "failed", error="boom")
        snap = ledger.replay()["job-0001"]
        assert snap.status == "failed"
        assert snap.error == "boom"

    def test_each_record_is_one_line(self, tmp_path):
        ledger = JobLedger(tmp_path / "ledger.jsonl")
        _submit(ledger, "job-0001")
        ledger.record_state("job-0001", "running")
        lines = ledger.path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)
        assert ledger.records_written == 2

    def test_torn_tail_is_skipped(self, tmp_path):
        ledger = JobLedger(tmp_path / "ledger.jsonl")
        _submit(ledger, "job-0001")
        ledger.record_state("job-0001", "running")
        with open(ledger.path, "ab") as handle:
            handle.write(b'{"kind": "state", "job": "job-0001", "stat')
        snap = JobLedger(ledger.path).replay()["job-0001"]
        assert snap.status == "running"  # the torn line changed nothing

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = JobLedger(path)
        _submit(ledger, "job-0001")
        with open(path, "ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(b'[1, 2, 3]\n')
        ledger.record_state("job-0001", "done", result_path="r.json")
        assert JobLedger(path).replay()["job-0001"].status == "done"

    def test_state_without_submit_is_dropped(self, tmp_path):
        ledger = JobLedger(tmp_path / "ledger.jsonl")
        ledger.record_state("job-0009", "running")
        assert ledger.replay() == {}

    def test_missing_file_replays_empty(self, tmp_path):
        assert JobLedger(tmp_path / "absent.jsonl").replay() == {}

    def test_unknown_status_rejected(self, tmp_path):
        ledger = JobLedger(tmp_path / "ledger.jsonl")
        with pytest.raises(ValueError, match="unknown job status"):
            ledger.record_state("job-0001", "exploded")


class TestRotation:
    def test_rotate_compacts_to_live_snapshot(self, tmp_path):
        ledger = JobLedger(tmp_path / "ledger.jsonl")
        for index in range(3):
            _submit(ledger, f"job-{index:04d}", at=float(index))
            ledger.record_state(f"job-{index:04d}", "running")
            ledger.record_state(
                f"job-{index:04d}", "done", result_path=f"{index}.json"
            )
        before = ledger.replay()
        ledger.rotate(before)
        # Compacted: one submit + one terminal state per job.
        assert len(ledger.path.read_text().splitlines()) == 6
        after = JobLedger(ledger.path).replay()
        assert {
            (s.job_id, s.status, s.result_path) for s in after.values()
        } == {(s.job_id, s.status, s.result_path) for s in before.values()}

    def test_queued_jobs_keep_only_their_submit(self, tmp_path):
        ledger = JobLedger(tmp_path / "ledger.jsonl")
        _submit(ledger, "job-0001")
        ledger.rotate(ledger.replay())
        lines = ledger.path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "submit"
        assert JobLedger(ledger.path).replay()["job-0001"].status == "queued"

    def test_maybe_rotate_thresholds(self, tmp_path):
        ledger = JobLedger(tmp_path / "ledger.jsonl", rotate_at=4)
        _submit(ledger, "job-0001")
        assert not ledger.maybe_rotate(ledger.replay())
        for _ in range(5):
            ledger.record_state("job-0001", "running")
        assert ledger.maybe_rotate(ledger.replay())
        assert ledger.rotations == 1
        assert len(ledger.path.read_text().splitlines()) == 2

    def test_rotate_at_validation(self, tmp_path):
        with pytest.raises(ValueError, match="rotate_at"):
            JobLedger(tmp_path / "l.jsonl", rotate_at=1)


class TestSnapshotRecords:
    def test_submit_and_state_records_round_trip(self):
        snap = JobSnapshot(
            job_id="job-0001",
            requests=[{"benchmark": "b", "scheme": "s", "length": 1}],
            options={"supervise": True},
            idempotency_key="k",
            created_at=1.0,
            status="failed",
            error="boom",
            updated_at=2.0,
        )
        submit = snap.submit_record()
        state = snap.state_record()
        assert submit["kind"] == "submit" and submit["job"] == "job-0001"
        assert state["kind"] == "state" and state["error"] == "boom"
        assert "result_path" not in state
