"""Tests for the bench-trajectory aggregator (CI perf/safety history)."""

import json

import pytest

from repro.sim.trajectory import (
    TRAJECTORY_NAME,
    aggregate_point,
    load_trajectory,
    update_trajectory,
)


def _write_bench_files(results_dir):
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "BENCH_hotpath.json").write_text(
        json.dumps(
            {
                "length": 20000,
                "cells": {
                    "spec2017/mcf/unsafe": {
                        "legacy_uops_per_sec": 40000,
                        "vector_uops_per_sec": 60000,
                        "speedup": 1.5,
                        "phases": {"dispatch": 0.1},
                    },
                    "spec2017/mcf/stt+recon": {
                        "legacy_uops_per_sec": 30000,
                        "vector_uops_per_sec": 45000,
                        "speedup": 1.5,
                        "phases": {"dispatch": 0.1},
                    },
                },
            }
        )
    )
    (results_dir / "BENCH_gadgets.json").write_text(
        json.dumps(
            {
                "cells": [
                    {"verdict": "leak", "ok": True},
                    {"verdict": "protected", "ok": True},
                    {"verdict": "protected", "ok": False},
                ]
            }
        )
    )


class TestAggregatePoint:
    def test_summarizes_hotpath_and_gadgets(self, tmp_path):
        _write_bench_files(tmp_path)
        point = aggregate_point(tmp_path, sha="abc123", timestamp=5.0)
        assert point["sha"] == "abc123"
        assert point["timestamp"] == 5.0
        assert point["sources"] == [
            "BENCH_gadgets.json",
            "BENCH_hotpath.json",
        ]
        hotpath = point["hotpath"]
        assert hotpath["mean_vector_uops_per_sec"] == 52500
        assert hotpath["geomean_speedup"] == 1.5
        # Per-cell phases are deliberately dropped: the trajectory keeps
        # the throughput headline, not the whole profile.
        assert "phases" not in hotpath["cells"]["spec2017/mcf/unsafe"]
        assert point["gadgets"] == {
            "cells": 3,
            "ok": 2,
            "verdicts": {"leak": 1, "protected": 2},
        }

    def test_torn_artifact_is_skipped_not_fatal(self, tmp_path):
        _write_bench_files(tmp_path)
        (tmp_path / "BENCH_hotpath.json").write_text('{"cells": {tor')
        point = aggregate_point(tmp_path, sha="abc", timestamp=0.0)
        assert point["skipped"] == ["BENCH_hotpath.json"]
        assert "hotpath" not in point
        assert point["gadgets"]["cells"] == 3


class TestUpdateTrajectory:
    def test_appends_points_across_shas(self, tmp_path):
        _write_bench_files(tmp_path)
        out = update_trajectory(tmp_path, sha="aaa", timestamp=1.0)
        assert out.name == TRAJECTORY_NAME
        update_trajectory(tmp_path, sha="bbb", timestamp=2.0)
        trajectory = load_trajectory(out)
        assert [p["sha"] for p in trajectory["points"]] == ["aaa", "bbb"]

    def test_same_sha_replaces_instead_of_duplicating(self, tmp_path):
        _write_bench_files(tmp_path)
        update_trajectory(tmp_path, sha="aaa", timestamp=1.0)
        out = update_trajectory(tmp_path, sha="aaa", timestamp=2.0)
        trajectory = load_trajectory(out)
        assert len(trajectory["points"]) == 1
        assert trajectory["points"][0]["timestamp"] == 2.0

    def test_trajectory_file_is_not_reaggregated(self, tmp_path):
        # The output file matches BENCH_*.json but must never be
        # consumed as an input on the next run.
        _write_bench_files(tmp_path)
        update_trajectory(tmp_path, sha="aaa", timestamp=1.0)
        point = aggregate_point(tmp_path, sha="bbb", timestamp=2.0)
        assert TRAJECTORY_NAME not in point["sources"]

    def test_torn_trajectory_file_starts_fresh(self, tmp_path):
        _write_bench_files(tmp_path)
        out = tmp_path / TRAJECTORY_NAME
        out.write_text('{"points": tor')
        update_trajectory(tmp_path, sha="aaa", timestamp=1.0)
        assert len(load_trajectory(out)["points"]) == 1
