"""Tests for the bench-trajectory aggregator (CI perf/safety history)."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.sim.trajectory import (
    TRAJECTORY_NAME,
    aggregate_point,
    load_trajectory,
    update_trajectory,
)

SCRIPT = (
    Path(__file__).resolve().parent.parent.parent
    / "scripts"
    / "aggregate_bench.py"
)


def _script_main():
    spec = importlib.util.spec_from_file_location("aggregate_bench", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.main


def _write_bench_files(results_dir):
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / "BENCH_hotpath.json").write_text(
        json.dumps(
            {
                "length": 20000,
                "cells": {
                    "spec2017/mcf/unsafe": {
                        "legacy_uops_per_sec": 40000,
                        "vector_uops_per_sec": 60000,
                        "speedup": 1.5,
                        "phases": {"dispatch": 0.1},
                    },
                    "spec2017/mcf/stt+recon": {
                        "legacy_uops_per_sec": 30000,
                        "vector_uops_per_sec": 45000,
                        "speedup": 1.5,
                        "phases": {"dispatch": 0.1},
                    },
                },
            }
        )
    )
    (results_dir / "BENCH_gadgets.json").write_text(
        json.dumps(
            {
                "cells": [
                    {"verdict": "leak", "ok": True},
                    {"verdict": "protected", "ok": True},
                    {"verdict": "protected", "ok": False},
                ]
            }
        )
    )


class TestAggregatePoint:
    def test_summarizes_hotpath_and_gadgets(self, tmp_path):
        _write_bench_files(tmp_path)
        point = aggregate_point(tmp_path, sha="abc123", timestamp=5.0)
        assert point["sha"] == "abc123"
        assert point["timestamp"] == 5.0
        assert point["sources"] == [
            "BENCH_gadgets.json",
            "BENCH_hotpath.json",
        ]
        hotpath = point["hotpath"]
        assert hotpath["mean_vector_uops_per_sec"] == 52500
        assert hotpath["geomean_speedup"] == 1.5
        # Per-cell phases are deliberately dropped: the trajectory keeps
        # the throughput headline, not the whole profile.
        assert "phases" not in hotpath["cells"]["spec2017/mcf/unsafe"]
        assert point["gadgets"] == {
            "cells": 3,
            "ok": 2,
            "verdicts": {"leak": 1, "protected": 2},
        }

    def test_torn_artifact_is_skipped_not_fatal(self, tmp_path):
        _write_bench_files(tmp_path)
        (tmp_path / "BENCH_hotpath.json").write_text('{"cells": {tor')
        point = aggregate_point(tmp_path, sha="abc", timestamp=0.0)
        assert point["skipped"] == ["BENCH_hotpath.json"]
        assert "hotpath" not in point
        assert point["gadgets"]["cells"] == 3


class TestSamplingSummary:
    def _sampling_payload(self, with_summary=True):
        payload = {
            "length": 12000,
            "sampling": "ci=0.02,conf=0.95",
            "cells": {
                "mcf/unsafe": {"within_ci": True, "cut": 5.0},
                "mcf/stt": {"within_ci": True, "cut": 6.2},
                "gcc/unsafe": {"within_ci": False, "cut": 5.5},
            },
        }
        if with_summary:
            payload["summary"] = {
                "cells": 3,
                "within_ci": 2,
                "min_cut": 5.0,
                "geomean_cut": 5.55,
            }
        return payload

    def test_prefers_bench_summary_block(self, tmp_path):
        tmp_path.mkdir(exist_ok=True)
        (tmp_path / "BENCH_sampling.json").write_text(
            json.dumps(self._sampling_payload())
        )
        point = aggregate_point(tmp_path, sha="abc", timestamp=0.0)
        assert point["sources"] == ["BENCH_sampling.json"]
        assert point["sampling"] == {
            "length": 12000,
            "spec": "ci=0.02,conf=0.95",
            "cells": 3,
            "within_ci": 2,
            "min_cut": 5.0,
            "geomean_cut": 5.55,
        }

    def test_recomputes_from_cells_without_summary(self, tmp_path):
        (tmp_path / "BENCH_sampling.json").write_text(
            json.dumps(self._sampling_payload(with_summary=False))
        )
        point = aggregate_point(tmp_path, sha="abc", timestamp=0.0)
        sampling = point["sampling"]
        assert sampling["cells"] == 3
        assert sampling["within_ci"] == 2
        assert sampling["min_cut"] == 5.0
        assert sampling["geomean_cut"] == pytest.approx(5.55, abs=0.01)

    def test_empty_sampling_artifact_yields_zero_counts(self, tmp_path):
        (tmp_path / "BENCH_sampling.json").write_text("{}")
        point = aggregate_point(tmp_path, sha="abc", timestamp=0.0)
        assert point["sampling"] == {
            "length": None,
            "spec": None,
            "cells": 0,
            "within_ci": 0,
            "min_cut": 0.0,
            "geomean_cut": 0.0,
        }


class TestMissingArtifacts:
    def test_missing_results_dir_yields_stub_point(self, tmp_path):
        point = aggregate_point(
            tmp_path / "does-not-exist", sha="abc", timestamp=0.0
        )
        assert point["sources"] == []
        assert "hotpath" not in point
        assert "sampling" not in point

    def test_empty_results_dir_yields_stub_point(self, tmp_path):
        point = aggregate_point(tmp_path, sha="abc", timestamp=0.0)
        assert point["sources"] == []

    def test_update_trajectory_creates_parent_dirs(self, tmp_path):
        out = tmp_path / "deep" / "nested" / "BENCH_trajectory.json"
        update_trajectory(
            tmp_path / "missing-results", out, sha="abc", timestamp=0.0
        )
        trajectory = load_trajectory(out)
        assert [p["sha"] for p in trajectory["points"]] == ["abc"]
        assert trajectory["points"][0]["sources"] == []


class TestAggregateScript:
    """scripts/aggregate_bench.py must never fail on missing artifacts."""

    def test_missing_results_dir_emits_stub(self, tmp_path, capsys):
        main = _script_main()
        results = tmp_path / "results"  # never created
        assert main(["--results-dir", str(results), "--sha", "deadbeef"]) == 0
        out = capsys.readouterr().out
        assert "stub point: no BENCH_*.json artifacts found" in out
        trajectory = load_trajectory(results / TRAJECTORY_NAME)
        assert len(trajectory["points"]) == 1
        assert trajectory["points"][0]["sources"] == []

    def test_partial_artifacts_summarized(self, tmp_path, capsys):
        main = _script_main()
        _write_bench_files(tmp_path)
        (tmp_path / "BENCH_sampling.json").write_text(
            json.dumps(
                {
                    "summary": {
                        "cells": 12,
                        "within_ci": 12,
                        "min_cut": 5.01,
                        "geomean_cut": 5.4,
                    }
                }
            )
        )
        (tmp_path / "BENCH_torn.json").write_text("{ torn")
        assert main(["--results-dir", str(tmp_path), "--sha", "cafe"]) == 0
        out = capsys.readouterr().out
        assert "sampling 12/12 within CI at 5.01x+ cut" in out
        assert "stub point" not in out
        trajectory = load_trajectory(tmp_path / TRAJECTORY_NAME)
        point = trajectory["points"][-1]
        assert point["skipped"] == ["BENCH_torn.json"]
        assert point["sampling"]["within_ci"] == 12


class TestUpdateTrajectory:
    def test_appends_points_across_shas(self, tmp_path):
        _write_bench_files(tmp_path)
        out = update_trajectory(tmp_path, sha="aaa", timestamp=1.0)
        assert out.name == TRAJECTORY_NAME
        update_trajectory(tmp_path, sha="bbb", timestamp=2.0)
        trajectory = load_trajectory(out)
        assert [p["sha"] for p in trajectory["points"]] == ["aaa", "bbb"]

    def test_same_sha_replaces_instead_of_duplicating(self, tmp_path):
        _write_bench_files(tmp_path)
        update_trajectory(tmp_path, sha="aaa", timestamp=1.0)
        out = update_trajectory(tmp_path, sha="aaa", timestamp=2.0)
        trajectory = load_trajectory(out)
        assert len(trajectory["points"]) == 1
        assert trajectory["points"][0]["timestamp"] == 2.0

    def test_trajectory_file_is_not_reaggregated(self, tmp_path):
        # The output file matches BENCH_*.json but must never be
        # consumed as an input on the next run.
        _write_bench_files(tmp_path)
        update_trajectory(tmp_path, sha="aaa", timestamp=1.0)
        point = aggregate_point(tmp_path, sha="bbb", timestamp=2.0)
        assert TRAJECTORY_NAME not in point["sources"]

    def test_torn_trajectory_file_starts_fresh(self, tmp_path):
        _write_bench_files(tmp_path)
        out = tmp_path / TRAJECTORY_NAME
        out.write_text('{"points": tor')
        update_trajectory(tmp_path, sha="aaa", timestamp=1.0)
        assert len(load_trajectory(out)["points"]) == 1
