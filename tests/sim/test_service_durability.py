"""Durability tests: the sweep service's job table survives restarts.

"Restart" here is in-process: build a :class:`SweepService` on a state
dir, abandon it (the moral equivalent of kill -9 — nothing is flushed
beyond what the write-ahead ledger already made durable), then build a
second service on the same state dir and assert nothing was lost, run
twice, or changed.  The real kill -9 → subprocess restart version of
the same contract lives in ``scripts/service_chaos_drill.py`` (driven
by the ``slow``-marked test at the bottom and the CI service-chaos
gate).
"""

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.service

from repro.api import RunRequest, run_suite
from repro.sim.ledger import JobLedger
from repro.sim.service import SweepService

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

SCHEMES = ("unsafe", "stt", "stt+recon")


def _cells(schemes=SCHEMES):
    return [
        {"benchmark": "spec2017/mcf", "scheme": scheme, "length": 300}
        for scheme in schemes
    ]


@pytest.fixture
def state(tmp_path, monkeypatch):
    """A durable state dir plus an isolated result store."""
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
    return tmp_path / "state"


def _service(state_dir, **kwargs):
    kwargs.setdefault("backend", "inline")
    kwargs.setdefault("start_workers", False)
    return SweepService(state_dir=state_dir, **kwargs)


def _wait_done(service, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = service.get(job_id)
        if job is not None and job.done:
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


def _sorted_results(payload):
    return sorted(
        payload["results"], key=lambda cell: (cell["bench"], cell["scheme"])
    )


class TestRestartRecovery:
    def test_queued_job_survives_restart(self, state):
        first = _service(state)
        job = first.submit(_cells(), {})
        # No close(), no flush: the ledger alone carries the state over.
        second = _service(state)
        recovered = second.get(job.job_id)
        assert recovered is not None
        assert recovered.status == "queued"
        assert recovered.recovered
        assert recovered.requests == job.requests
        assert second.metrics.counters["ledger_resumed_jobs"].value == 1

    def test_idempotency_map_survives_restart(self, state):
        first = _service(state)
        job, _ = first.submit_job(_cells(), {}, idempotency_key="pin-1")
        second = _service(state)
        again, replayed = second.submit_job(
            _cells(), {}, idempotency_key="pin-1"
        )
        assert replayed
        assert again.job_id == job.job_id

    def test_job_ids_do_not_collide_after_restart(self, state):
        first = _service(state)
        job = first.submit(_cells(), {})
        second = _service(state)
        fresh = second.submit(_cells(["stt"]), {})
        assert fresh.job_id != job.job_id

    def test_mid_suite_crash_resumes_bit_identical(self, state):
        requests = [RunRequest("spec2017/mcf", s, 300) for s in SCHEMES]
        reference = json.loads(run_suite(requests, store=False).to_json())

        first = _service(state)
        job = first.submit(_cells(), {})
        first._run_cell(job)  # cell 0
        first._run_cell(job)  # cell 1 — then the "power cut"
        assert job.cursor == 2

        second = _service(state, start_workers=True)
        try:
            finished = _wait_done(second, job.job_id)
            assert finished.status == "done"
            assert finished.recovered
            served = json.loads(finished.result_json)
        finally:
            second.close()
        assert _sorted_results(served) == _sorted_results(reference)
        cells = [(r["bench"], r["scheme"]) for r in served["records"]]
        assert len(cells) == len(requests), "lost or duplicated cells"
        assert len(set(cells)) == len(cells)
        assert not served.get("failures")
        # S6: service-level counters ride along in the suite's
        # fault_counters so existing dashboards pick them up.
        counters = served["fault_counters"]
        assert counters["ledger_records"] >= 1
        assert counters["ledger_resumed_jobs"] == 1

    def test_done_job_reattaches_sidecar_without_rerun(self, state):
        first = _service(state)
        job = first.submit(_cells(["stt"]), {})
        first._run_cell(job)
        assert job.status == "done"
        # start_workers=False: if recovery needed to *run* anything the
        # job could never reach "done" here.
        second = _service(state)
        recovered = second.get(job.job_id)
        assert recovered.status == "done"
        assert recovered.result_json == job.result_json

    def test_lost_sidecar_falls_back_to_rerun(self, state):
        first = _service(state)
        job = first.submit(_cells(["stt"]), {})
        first._run_cell(job)
        (state / f"{job.job_id}.result.json").unlink()
        second = _service(state, start_workers=True)
        try:
            finished = _wait_done(second, job.job_id)
            assert finished.status == "done"
            assert json.loads(finished.result_json)["results"]
        finally:
            second.close()

    def test_failed_job_stays_failed(self, state):
        first = _service(state)
        job = first.submit(_cells(["stt"]), {})
        first._finalize_failed(job, RuntimeError("engine exploded"))
        second = _service(state)
        recovered = second.get(job.job_id)
        assert recovered.status == "failed"
        assert "engine exploded" in recovered.error
        # A failed job must not re-enter the ready queue.
        assert not second._ready

    def test_unresolvable_request_fails_cleanly_after_restart(self, state):
        """Version drift: a ledgered benchmark this build doesn't know."""
        state.mkdir(parents=True)
        ledger = JobLedger(state / "ledger.jsonl")
        ledger.record_submit(
            "job-0001",
            [{"benchmark": "spec2017/not-a-bench", "scheme": "stt",
              "length": 300}],
            {},
            idempotency_key=None,
            at=time.time(),
        )
        service = _service(state)
        job = service.get("job-0001")
        assert job.status == "failed"
        assert "unrecoverable after restart" in job.error

    def test_ledger_rotation_keeps_replay_intact(self, state):
        first = _service(state)
        first._ledger = JobLedger(state / "ledger.jsonl", rotate_at=2)
        jobs = [first.submit(_cells(["stt"]), {}) for _ in range(3)]
        for job in jobs:
            first._run_cell(job)
        assert first.metrics.counters["ledger_rotations"].value >= 1
        second = _service(state)
        for job in jobs:
            assert second.get(job.job_id).status == "done"


@pytest.mark.slow
def test_kill9_restart_drill_end_to_end(tmp_path):
    """The CI gate, verbatim: SIGKILL mid-suite, restart, bit-identical."""
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "scripts" / "service_chaos_drill.py"),
            "--work", str(tmp_path / "drill"),
            "--length", "300",
            "--kill-after", "2",
        ],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, (
        f"drill failed\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert "bit-identical" in proc.stdout
