"""Tests for the persistent result store."""

import dataclasses
import json
import warnings

import pytest

from repro.common import SchemeKind, SystemParams
from repro.sim import RunConfig, run_suite
from repro.sim.runner import run_benchmark
from repro.sim.store import (
    ResultStore,
    default_shard_depth,
    default_store_root,
    result_from_dict,
    result_to_dict,
    run_key,
)
from repro.workloads import get_benchmark


def _result(length=700):
    profile = get_benchmark("spec2017", "gcc")
    return run_benchmark(profile, SchemeKind.STT_RECON, length)


def _key(profile, length=700, params=None, **overrides):
    profile = dataclasses.replace(profile, **overrides)
    return run_key(
        profile,
        SchemeKind.STT_RECON,
        length,
        1,
        params or SystemParams(),
        0,
    )


class TestRunKey:
    def test_stable_for_identical_inputs(self):
        profile = get_benchmark("spec2017", "gcc")
        assert _key(profile) == _key(profile)

    def test_changed_system_params_invalidate(self):
        profile = get_benchmark("spec2017", "gcc")
        small_lpt = SystemParams(lpt_entries=4)
        assert _key(profile) != _key(profile, params=small_lpt)

    def test_changed_seed_invalidates(self):
        profile = get_benchmark("spec2017", "gcc")
        assert _key(profile) != _key(profile, seed=99)

    def test_changed_length_invalidates(self):
        profile = get_benchmark("spec2017", "gcc")
        assert _key(profile, length=700) != _key(profile, length=800)

    def test_schema_version_invalidates(self, monkeypatch):
        from repro.sim import store as store_module

        profile = get_benchmark("spec2017", "gcc")
        before = _key(profile)
        monkeypatch.setattr(store_module, "SCHEMA_VERSION", 999)
        assert _key(profile) != before


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        result = _result()
        restored = result_from_dict(result_to_dict(result))
        assert restored.profile == result.profile
        assert restored.scheme is result.scheme
        assert restored.cycles == result.cycles
        assert restored.stats.as_dict() == result.stats.as_dict()
        assert len(restored.per_core) == len(result.per_core)
        assert restored.ipc == result.ipc

    def test_dict_form_is_json_safe(self):
        json.dumps(result_to_dict(_result()))


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        result = _result()
        store.put("ab" * 32, result)
        restored = store.get("ab" * 32)
        assert restored is not None
        assert restored.cycles == result.cycles
        assert store.hits == 1

    def test_missing_key_counts_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("cd" * 32) is None
        assert store.misses == 1

    def test_corrupt_entry_is_quarantined_not_swallowed(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" * 32, _result())
        path = store._path("ab" * 32)
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.get("ab" * 32) is None
        assert store.corrupt_entries == 1
        assert store.misses == 1
        # The damaged file is renamed aside, inspectable but inert.
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.read_text() == "{not json"
        assert len(store) == 0  # *.corrupt no longer matches lookups

    def test_schema_invalid_entry_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store._path("cd" * 32)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"valid": "json", "wrong": "schema"}))
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.get("cd" * 32) is None
        assert store.corrupt_entries == 1

    def test_missing_entry_is_a_plain_miss_no_warning(self, tmp_path):
        store = ResultStore(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.get("ef" * 32) is None
        assert store.corrupt_entries == 0
        assert store.misses == 1

    def test_len_and_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" * 32, _result())
        store.put("cd" * 32, _result())
        assert len(store) == 2
        store.clear()
        assert len(store) == 0

    def test_default_root_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "/tmp/somewhere")
        assert str(default_store_root()) == "/tmp/somewhere"
        monkeypatch.setenv("REPRO_STORE", "off")
        assert default_store_root() is None
        monkeypatch.delenv("REPRO_STORE")
        assert default_store_root() is not None


class TestSharding:
    def test_default_depth_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_SHARDS", raising=False)
        assert default_shard_depth() == 1
        store = ResultStore("unused")
        assert store.shard_depth == 1

    def test_env_sets_default_depth(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SHARDS", "2")
        assert ResultStore("unused").shard_depth == 2

    def test_env_clamped_and_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_SHARDS", "99")
        assert default_shard_depth() == 4
        monkeypatch.setenv("REPRO_STORE_SHARDS", "cheese")
        with pytest.raises(ValueError):
            default_shard_depth()

    def test_invalid_explicit_depth_raises(self, tmp_path):
        with pytest.raises(ValueError, match="shard_depth"):
            ResultStore(tmp_path, shard_depth=0)
        with pytest.raises(ValueError, match="shard_depth"):
            ResultStore(tmp_path, shard_depth=5)

    def test_deeper_layout_nests_prefix_dirs(self, tmp_path):
        store = ResultStore(tmp_path, shard_depth=3)
        key = "abcdef" + "00" * 29
        store.put(key, _result())
        expected = tmp_path / "ab" / "cd" / "ef" / f"{key}.json"
        assert expected.is_file()
        assert store.get(key) is not None

    def test_reads_fall_back_across_depths(self, tmp_path):
        # A store written at depth 1 stays readable at depth 2 and vice
        # versa -- re-sharding must never orphan existing entries.
        shallow = ResultStore(tmp_path, shard_depth=1)
        deep = ResultStore(tmp_path, shard_depth=2)
        shallow.put("ab" * 32, _result())
        deep.put("cd" * 32, _result())
        assert deep.get("ab" * 32) is not None
        assert shallow.get("cd" * 32) is not None
        assert deep.hits == 1 and shallow.hits == 1

    def test_len_and_clear_span_all_depths(self, tmp_path):
        shallow = ResultStore(tmp_path, shard_depth=1)
        deep = ResultStore(tmp_path, shard_depth=2)
        shallow.put("ab" * 32, _result())
        deep.put("cd" * 32, _result())
        assert len(shallow) == 2
        assert len(deep) == 2
        shallow.clear()
        assert len(shallow) == 0
        assert deep.get("cd" * 32) is None


class TestSuiteMemoization:
    def test_second_invocation_fully_served_from_store(self, tmp_path):
        profiles = [
            get_benchmark("spec2017", "gcc"),
            get_benchmark("spec2017", "lbm"),
        ]
        schemes = (SchemeKind.UNSAFE, SchemeKind.STT)
        first = run_suite(
            profiles, schemes, 800, store=ResultStore(tmp_path)
        )
        assert first.store_hits == 0 and first.store_misses == 4
        second = run_suite(
            profiles, schemes, 800, store=ResultStore(tmp_path)
        )
        assert second.store_hits == 4 and second.store_misses == 0
        for key in first:
            assert first[key].cycles == second[key].cycles
            assert first[key].stats.as_dict() == second[key].stats.as_dict()

    def test_changed_params_miss_the_store(self, tmp_path):
        profiles = [get_benchmark("spec2017", "gcc")]
        schemes = (SchemeKind.STT_RECON,)
        run_suite(profiles, schemes, 800, store=ResultStore(tmp_path))
        varied = run_suite(
            profiles,
            schemes,
            800,
            config=RunConfig(params=SystemParams(lpt_entries=8)),
            store=ResultStore(tmp_path),
        )
        assert varied.store_hits == 0 and varied.store_misses == 1

    def test_interrupted_sweep_resumes(self, tmp_path):
        """Partial store contents are reused; only the gap is simulated."""
        profiles = [
            get_benchmark("spec2017", "gcc"),
            get_benchmark("spec2017", "lbm"),
        ]
        run_suite(
            profiles[:1],
            (SchemeKind.UNSAFE, SchemeKind.STT),
            800,
            store=ResultStore(tmp_path),
        )
        resumed = run_suite(
            profiles,
            (SchemeKind.UNSAFE, SchemeKind.STT),
            800,
            store=ResultStore(tmp_path),
        )
        assert resumed.store_hits == 2
        assert resumed.store_misses == 2
