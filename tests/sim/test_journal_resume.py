"""Tests for suite checkpointing (SuiteJournal) and --resume semantics."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.common import SchemeKind
from repro.sim import RunConfig, run_grid
from repro.sim.chaos import ChaosConfig
from repro.sim.engine import RunRecord, RunSpec
from repro.sim.store import ResultStore
from repro.sim.supervisor import (
    FaultPolicy,
    RunFailure,
    SuiteJournal,
    default_journal_path,
)
from repro.workloads import get_benchmark

LENGTH = 600
SCHEMES = (SchemeKind.UNSAFE, SchemeKind.STT)


def _profiles():
    return [
        get_benchmark("spec2017", "mcf"),
        get_benchmark("spec2017", "gcc"),
    ]


def _record():
    return RunRecord(
        bench="mcf",
        scheme=SchemeKind.STT,
        seed=7,
        wall_time_s=0.5,
        uops_per_sec=1000.0,
        from_store=False,
    )


def _failure():
    return RunFailure(
        bench="gcc",
        scheme=SchemeKind.UNSAFE,
        seed=3,
        key="cd" * 32,
        error_type="MemoryError",
        message="boom",
        traceback="",
        attempts=3,
        worker_pid=None,
        wall_time_s=0.1,
        diagnostics=None,
    )


class TestSuiteJournal:
    def test_round_trip_done_and_failed(self, tmp_path):
        journal = SuiteJournal(tmp_path / "journal.jsonl")
        journal.record_done("ab" * 32, _record())
        journal.record_failed("cd" * 32, _failure())
        entries = journal.load()
        assert entries["ab" * 32]["status"] == "done"
        assert RunRecord.from_dict(entries["ab" * 32]["record"]) == _record()
        assert entries["cd" * 32]["status"] == "failed"
        assert (
            RunFailure.from_dict(entries["cd" * 32]["failure"]) == _failure()
        )

    def test_missing_file_is_empty(self, tmp_path):
        assert SuiteJournal(tmp_path / "nope.jsonl").load() == {}

    def test_last_write_wins(self, tmp_path):
        journal = SuiteJournal(tmp_path / "journal.jsonl")
        journal.record_failed("ab" * 32, _failure())
        journal.record_done("ab" * 32, _record())
        assert journal.load()["ab" * 32]["status"] == "done"

    def test_torn_tail_is_skipped(self, tmp_path):
        journal = SuiteJournal(tmp_path / "journal.jsonl")
        journal.record_done("ab" * 32, _record())
        with open(journal.path, "a") as handle:
            handle.write('{"key": "cd", "status": "do')  # killed mid-write
        entries = journal.load()
        assert set(entries) == {"ab" * 32}

    def test_garbage_lines_are_skipped(self, tmp_path):
        journal = SuiteJournal(tmp_path / "journal.jsonl")
        journal.path.write_text('not json\n[1,2,3]\n{"no": "key"}\n')
        journal.record_done("ab" * 32, _record())
        assert set(journal.load()) == {"ab" * 32}

    def test_binary_garbage_bytes_are_tolerated(self, tmp_path):
        # A disk-level tear can leave non-UTF8 bytes, not just cut JSON;
        # load() must still harvest every intact line around them.
        journal = SuiteJournal(tmp_path / "journal.jsonl")
        journal.record_done("ab" * 32, _record())
        with open(journal.path, "ab") as handle:
            handle.write(b'\x80\xfe\x00garbage\xff\n')
        journal.record_done("cd" * 32, _record())
        entries = journal.load()
        assert set(entries) == {"ab" * 32, "cd" * 32}

    def test_resume_survives_corrupt_journal_tail(self, tmp_path):
        # End-to-end: a sweep checkpointed, the journal tail torn AND
        # polluted with binary garbage, then resumed -- the intact
        # checkpoints replay, the rest re-run, nothing crashes.
        from repro.sim.supervisor import Supervisor

        store = ResultStore(tmp_path / "store")
        journal = SuiteJournal(tmp_path / "journal.jsonl")
        specs = [
            RunSpec.build(profile, scheme, LENGTH, RunConfig())
            for profile in _profiles()
            for scheme in SCHEMES
        ]
        first = Supervisor(
            FaultPolicy(), jobs=1, store=store, journal=journal
        )
        results, records, failures = first.execute(specs)
        assert not failures
        with open(journal.path, "ab") as handle:
            handle.write(b'{"key": "ef", "status"')  # torn final line
            handle.write(b'\xde\xad\xbe\xef\n')  # binary garbage
        resumed = Supervisor(
            FaultPolicy(), jobs=1, store=store, journal=journal
        )
        r_results, r_records, r_failures = resumed.execute(
            specs, resume=True
        )
        assert not r_failures
        assert all(record.from_store for record in r_records)
        for before, after in zip(results, r_results):
            assert before.cycles == after.cycles

    def test_clear_removes_file(self, tmp_path):
        journal = SuiteJournal(tmp_path / "journal.jsonl")
        journal.record_done("ab" * 32, _record())
        journal.clear()
        assert not journal.path.exists()
        journal.clear()  # idempotent

    def test_default_path_sits_next_to_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert default_journal_path(store) == tmp_path / "store" / "journal.jsonl"


class TestResume:
    def test_failed_cells_replay_without_rerun(self, tmp_path):
        journal = SuiteJournal(tmp_path / "journal.jsonl")
        chaos = ChaosConfig(seed=2, oom=1.0)  # every cell fails permanently
        policy = FaultPolicy(retries=0, backoff_s=0.001)
        first = run_grid(
            _profiles(), SCHEMES, LENGTH,
            config=RunConfig(chaos=chaos),
            policy=policy, journal=journal, jobs=1,
        )
        assert len(first.failures) == 4
        resumed = run_grid(
            _profiles(), SCHEMES, LENGTH,
            config=RunConfig(chaos=chaos),
            policy=policy, journal=journal, resume=True, jobs=1,
        )
        assert len(resumed.failures) == 4
        assert resumed.fault_counters["fault_replayed_failures"] == 4
        # Replays carry the original attempt counts, not fresh ones.
        assert [f.attempts for f in resumed.failures] == [
            f.attempts for f in first.failures
        ]

    def test_done_cells_serve_from_store_bit_identically(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        journal = SuiteJournal(default_journal_path(store))
        policy = FaultPolicy()
        first = run_grid(
            _profiles(), SCHEMES, LENGTH,
            policy=policy, store=store, journal=journal, jobs=1,
        )
        assert first.ok and first.store_hits == 0
        resumed = run_grid(
            _profiles(), SCHEMES, LENGTH,
            policy=policy, store=store, journal=journal, resume=True, jobs=1,
        )
        assert resumed.ok
        assert resumed.store_hits == 4  # nothing re-simulated
        for key in first:
            assert first[key].stats.as_dict() == resumed[key].stats.as_dict()
            assert first[key].cycles == resumed[key].cycles


_SWEEP_SCRIPT = """
import sys
from repro.common import SchemeKind
from repro.sim import RunConfig, run_grid
from repro.sim.store import ResultStore
from repro.sim.supervisor import FaultPolicy, SuiteJournal, default_journal_path
from repro.workloads import get_benchmark

root = sys.argv[1]
store = ResultStore(root + "/store")
journal = SuiteJournal(default_journal_path(store))
profiles = [get_benchmark("spec2017", n) for n in ("mcf", "gcc", "lbm")]
run_grid(
    profiles,
    (SchemeKind.UNSAFE, SchemeKind.STT),
    %(length)d,
    policy=FaultPolicy(),
    store=store,
    journal=journal,
    jobs=1,
)
"""


class TestSigkillResume:
    """The acceptance-criteria scenario: SIGKILL mid-sweep, then resume."""

    @pytest.mark.slow
    def test_resume_after_sigkill_reruns_only_unfinished_cells(self, tmp_path):
        length = 5000  # slow enough that the kill lands mid-sweep
        proc = subprocess.Popen(
            [sys.executable, "-c", _SWEEP_SCRIPT % {"length": length}, str(tmp_path)],
            env={**os.environ, "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src")},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        journal_path = tmp_path / "store" / "journal.jsonl"
        deadline = time.monotonic() + 120
        try:
            # Wait until some (but not all 6) cells are checkpointed.
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break  # finished before we could kill: still a valid run
                if journal_path.exists():
                    lines = [
                        line
                        for line in journal_path.read_text().splitlines()
                        if line.strip()
                    ]
                    if len(lines) >= 2:
                        break
                time.sleep(0.02)
            else:
                pytest.fail("sweep never checkpointed a cell")
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)

        store = ResultStore(tmp_path / "store")
        journal = SuiteJournal(journal_path)
        done_before = {
            key
            for key, entry in journal.load().items()
            if entry["status"] == "done"
        }
        profiles = [
            get_benchmark("spec2017", n) for n in ("mcf", "gcc", "lbm")
        ]
        resumed = run_grid(
            profiles,
            SCHEMES,
            length,
            policy=FaultPolicy(),
            store=store,
            journal=journal,
            resume=True,
            jobs=1,
        )
        assert resumed.ok
        assert len(resumed.records) == 6
        # Every checkpointed cell was served from the store, not re-run.
        assert resumed.store_hits >= len(done_before)
        # And the merged result is bit-identical to a clean full sweep.
        reference = run_grid(profiles, SCHEMES, length, jobs=1)
        for key in reference:
            assert reference[key].stats.as_dict() == resumed[key].stats.as_dict()
            assert reference[key].cycles == resumed[key].cycles
