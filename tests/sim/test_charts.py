"""Unit tests for ASCII chart rendering."""

from repro.sim.charts import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = bar_chart({"a": 1.0, "b": 0.5}, width=20)
        lines = chart.splitlines()
        assert lines[0].count("█") > lines[1].count("█")
        assert lines[0].count("█") == 20

    def test_labels_and_values_present(self):
        chart = bar_chart({"xalancbmk": 0.786}, width=10)
        assert "xalancbmk" in chart
        assert "0.786" in chart

    def test_empty(self):
        assert "empty" in bar_chart({})

    def test_zero_values_safe(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart and "b" in chart

    def test_reference_tick(self):
        chart = bar_chart({"a": 0.5}, width=20, max_value=1.0, reference=1.0)
        # The tick lands past the bar.
        assert "|" in chart or chart.count("█") == 20

    def test_max_value_clamps_scale(self):
        a = bar_chart({"x": 0.9}, width=10, max_value=1.0)
        b = bar_chart({"x": 0.9}, width=10)  # self-scaled: full width
        assert a.count("█") <= b.count("█")

    def test_custom_format(self):
        chart = bar_chart({"a": 0.125}, fmt="{:.1%}")
        assert "12.5%" in chart


class TestGroupedBarChart:
    def test_groups_rendered(self):
        chart = grouped_bar_chart(
            [
                ("SPEC2017", {"STT": 0.93, "STT+ReCon": 0.97}),
                ("SPEC2006", {"STT": 0.92, "STT+ReCon": 0.97}),
            ],
            max_value=1.0,
        )
        assert "SPEC2017" in chart and "SPEC2006" in chart
        assert chart.count("STT+ReCon") == 2

    def test_common_scale_across_groups(self):
        chart = grouped_bar_chart(
            [("g1", {"a": 1.0}), ("g2", {"a": 0.5})], width=20
        )
        lines = [l for l in chart.splitlines() if "█" in l]
        assert lines[0].count("█") == 2 * lines[1].count("█")

    def test_empty(self):
        assert "empty" in grouped_bar_chart([])
