"""Tests for the async sweep service and its repro.api HTTP client.

Each test boots a real asyncio HTTP server on an ephemeral port in a
daemon thread and drives it through the public client helpers
(``submit_suite`` / ``poll`` / ``result``), so the wire format is
exercised end to end.
"""

import asyncio
import contextlib
import json
import threading
import urllib.error
import urllib.request

import pytest

pytestmark = pytest.mark.service

from repro.api import RunRequest, poll, result, submit_suite
from repro.sim.engine import SuiteResult
from repro.sim.service import SweepService, _serve_async


@contextlib.contextmanager
def _running(service):
    """Serve an already-built service; yields its base URL."""
    ready = threading.Event()
    bound = []
    loop_holder = {}

    def run():
        loop = asyncio.new_event_loop()
        loop_holder["loop"] = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(
                _serve_async(service, "127.0.0.1", 0, ready=ready, bound=bound)
            )
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "service failed to start"
    host, port = bound[0]
    try:
        yield f"http://{host}:{port}"
    finally:
        loop = loop_holder.get("loop")
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(
                lambda: [task.cancel() for task in asyncio.all_tasks(loop)]
            )
        service.close()


@pytest.fixture
def server(monkeypatch):
    """A running sweep service; yields its base URL."""
    monkeypatch.setenv("REPRO_STORE", "off")
    service = SweepService(jobs=1, backend="inline", store=False)
    ready = threading.Event()
    bound = []
    loop_holder = {}

    def run():
        loop = asyncio.new_event_loop()
        loop_holder["loop"] = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(
                _serve_async(service, "127.0.0.1", 0, ready=ready, bound=bound)
            )
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "service failed to start"
    host, port = bound[0]
    yield f"http://{host}:{port}"
    loop = loop_holder.get("loop")
    if loop is not None and loop.is_running():
        loop.call_soon_threadsafe(
            lambda: [task.cancel() for task in asyncio.all_tasks(loop)]
        )
    service.close()


def _requests():
    return [
        RunRequest("spec2017/mcf", scheme, 300)
        for scheme in ("unsafe", "stt", "stt+recon")
    ]


class TestRoundTrip:
    def test_submit_poll_result(self, server):
        job = submit_suite(_requests(), url=server)
        assert job.startswith("job-")
        suite = result(job, url=server, timeout_s=120)
        assert isinstance(suite, SuiteResult)
        assert len(suite.records) == 3
        assert not suite.failures
        # The wire payload is the canonical SuiteResult JSON: it must
        # survive a local re-serialization round trip bit-identically.
        again = SuiteResult.from_json(suite.to_json())
        assert {k: v.cycles for k, v in again.items()} == {
            k: v.cycles for k, v in suite.items()
        }
        status = poll(job, url=server)
        assert status["status"] == "done"
        assert status["records"] == 3
        assert status["failures"] == 0

    def test_supervised_submit(self, server):
        job = submit_suite(
            _requests()[:2], url=server, supervise=True, backend="threads"
        )
        suite = result(job, url=server, timeout_s=120)
        assert len(suite.records) == 2

    def test_events_stream_is_ndjson(self, server):
        job = submit_suite(_requests(), url=server)
        result(job, url=server, timeout_s=120)  # wait for completion
        with urllib.request.urlopen(
            f"{server}/v1/jobs/{job}/events", timeout=30
        ) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            events = [
                json.loads(line)
                for line in response.read().decode("utf-8").splitlines()
            ]
        kinds = [event["type"] for event in events]
        assert kinds.count("record") == 3
        assert kinds[-1] == "status"
        assert events[-1]["status"] == "done"
        assert [event["seq"] for event in events] == list(range(len(events)))
        # Record events carry the engine record fields.
        record = next(e for e in events if e["type"] == "record")["record"]
        assert {"bench", "scheme", "wall_time_s"} <= set(record)


class TestJobStates:
    def test_result_conflict_while_running(self, server, monkeypatch):
        import repro.api as api_mod

        gate = threading.Event()
        real = api_mod.run_suite

        def gated(*args, **kwargs):
            gate.wait(30)
            return real(*args, **kwargs)

        monkeypatch.setattr(api_mod, "run_suite", gated)
        job = submit_suite(_requests()[:1], url=server)
        with pytest.raises(RuntimeError, match="not ready"):
            result(job, url=server, wait=False)
        assert poll(job, url=server)["status"] in ("queued", "running")
        gate.set()
        suite = result(job, url=server, timeout_s=120)
        assert len(suite.records) == 1

    def test_failed_job_reports_error(self, server, monkeypatch):
        import repro.api as api_mod

        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(api_mod, "run_suite", boom)
        job = submit_suite(_requests()[:1], url=server)
        with pytest.raises(RuntimeError, match="engine exploded"):
            result(job, url=server, timeout_s=30)
        assert poll(job, url=server)["status"] == "failed"


class TestValidation:
    def test_unknown_benchmark_is_rejected_at_submit(self, server):
        with pytest.raises(RuntimeError, match="unknown benchmark"):
            submit_suite(
                [RunRequest("spec2017/not-a-bench", "stt", 300)], url=server
            )

    def test_unknown_backend_is_rejected_at_submit(self, server):
        with pytest.raises(RuntimeError, match="unknown backend"):
            submit_suite(_requests()[:1], url=server, backend="abacus")

    def test_empty_requests_rejected(self, server):
        with pytest.raises(RuntimeError, match="non-empty"):
            submit_suite([], url=server)

    def test_config_does_not_serialize(self, server):
        from repro.sim.config import RunConfig

        with pytest.raises(ValueError, match="cannot be sent over HTTP"):
            submit_suite(
                [RunRequest("spec2017/mcf", "stt", 300, config=RunConfig())],
                url=server,
            )

    def test_unknown_job_404(self, server):
        with pytest.raises(RuntimeError, match="no such job"):
            poll("job-9999", url=server)

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(f"{server}/v2/nothing", timeout=10)
        assert exc_info.value.code == 404

    def test_health(self, server):
        with urllib.request.urlopen(f"{server}/v1/health", timeout=10) as resp:
            payload = json.loads(resp.read())
        assert payload["status"] == "ok"


def _events(url, job, since=None):
    query = f"?since={since}" if since is not None else ""
    with urllib.request.urlopen(
        f"{url}/v1/jobs/{job}/events{query}", timeout=30
    ) as response:
        return [
            json.loads(line)
            for line in response.read().decode("utf-8").splitlines()
        ]


class TestEventStreamEdges:
    """NDJSON streaming around the bounded ring: wraparound, reconnect,
    and late subscribers on an already-finished job."""

    @pytest.fixture
    def wrapped(self, monkeypatch):
        """A finished 12-cell job on a service whose ring holds only 8.

        13 events (12 records + terminal status) through a ring of 8
        drops the oldest 5, so a from-zero subscriber must see a gap.
        """
        monkeypatch.setenv("REPRO_STORE", "off")
        service = SweepService(
            jobs=1, backend="inline", store=False, event_buffer=8
        )
        schemes = ("unsafe", "stt", "stt+recon")
        requests = [
            RunRequest("spec2017/mcf", schemes[i % 3], 300) for i in range(12)
        ]
        with _running(service) as url:
            job = submit_suite(requests, url=url)
            result(job, url=url, timeout_s=120)
            yield url, job, service

    def test_wraparound_emits_gap_not_silence(self, wrapped):
        url, job, service = wrapped
        assert service.get(job).dropped_events == 5
        events = _events(url, job)
        assert events[0] == {"type": "gap", "missing": 5, "resume_seq": 5}
        tail = events[1:]
        assert [e["seq"] for e in tail] == list(range(5, 13))
        assert tail[-1]["type"] == "status"

    def test_reconnect_with_since_resumes_without_gap(self, wrapped):
        url, job, _ = wrapped
        # A client that saw seq 0..6 before its connection dropped
        # reconnects with ?since=7: everything it asks for is still in
        # the ring, so no gap notice and no duplicates.
        events = _events(url, job, since=7)
        assert [e["seq"] for e in events] == list(range(7, 13))
        assert all(e["type"] != "gap" for e in events)

    def test_since_past_the_end_yields_empty_stream(self, wrapped):
        url, job, _ = wrapped
        assert _events(url, job, since=13) == []

    def test_full_ring_streams_without_gap(self, server):
        # 3 records + status fit in the default ring: no gap, all seqs.
        job = submit_suite(_requests(), url=server)
        result(job, url=server, timeout_s=120)
        early = _events(server, job)
        again = _events(server, job)
        assert early == again  # a finished job's stream is replayable
        assert [e["type"] for e in early].count("gap") == 0

    def test_mid_stream_reconnect_while_running(self, server, monkeypatch):
        import repro.api as api_mod

        gate = threading.Event()
        real = api_mod.run_suite
        calls = {"n": 0}

        def gated(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 1:  # first cell free, rest wait on the gate
                gate.wait(30)
            return real(*args, **kwargs)

        monkeypatch.setattr(api_mod, "run_suite", gated)
        job = submit_suite(_requests(), url=server)
        deadline = 100
        while calls["n"] < 1 and deadline:
            threading.Event().wait(0.05)
            deadline -= 1
        # First connection: the events published so far (no terminal
        # status yet — the job is still running behind the gate).
        partial = poll(job, url=server)
        assert partial["status"] in ("queued", "running")
        gate.set()
        result(job, url=server, timeout_s=120)
        # Reconnect after the "drop": the stream picks up at the cursor.
        head = _events(server, job)
        resumed = _events(server, job, since=head[1]["seq"])
        assert [e["seq"] for e in resumed] == [
            e["seq"] for e in head[1:]
        ]
        assert resumed[-1]["type"] == "status"
