"""Tests for the async sweep service and its repro.api HTTP client.

Each test boots a real asyncio HTTP server on an ephemeral port in a
daemon thread and drives it through the public client helpers
(``submit_suite`` / ``poll`` / ``result``), so the wire format is
exercised end to end.
"""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import RunRequest, poll, result, submit_suite
from repro.sim.engine import SuiteResult
from repro.sim.service import SweepService, _serve_async


@pytest.fixture
def server(monkeypatch):
    """A running sweep service; yields its base URL."""
    monkeypatch.setenv("REPRO_STORE", "off")
    service = SweepService(jobs=1, backend="inline", store=False)
    ready = threading.Event()
    bound = []
    loop_holder = {}

    def run():
        loop = asyncio.new_event_loop()
        loop_holder["loop"] = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(
                _serve_async(service, "127.0.0.1", 0, ready=ready, bound=bound)
            )
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "service failed to start"
    host, port = bound[0]
    yield f"http://{host}:{port}"
    loop = loop_holder.get("loop")
    if loop is not None and loop.is_running():
        loop.call_soon_threadsafe(
            lambda: [task.cancel() for task in asyncio.all_tasks(loop)]
        )
    service.close()


def _requests():
    return [
        RunRequest("spec2017/mcf", scheme, 300)
        for scheme in ("unsafe", "stt", "stt+recon")
    ]


class TestRoundTrip:
    def test_submit_poll_result(self, server):
        job = submit_suite(_requests(), url=server)
        assert job.startswith("job-")
        suite = result(job, url=server, timeout_s=120)
        assert isinstance(suite, SuiteResult)
        assert len(suite.records) == 3
        assert not suite.failures
        # The wire payload is the canonical SuiteResult JSON: it must
        # survive a local re-serialization round trip bit-identically.
        again = SuiteResult.from_json(suite.to_json())
        assert {k: v.cycles for k, v in again.items()} == {
            k: v.cycles for k, v in suite.items()
        }
        status = poll(job, url=server)
        assert status["status"] == "done"
        assert status["records"] == 3
        assert status["failures"] == 0

    def test_supervised_submit(self, server):
        job = submit_suite(
            _requests()[:2], url=server, supervise=True, backend="threads"
        )
        suite = result(job, url=server, timeout_s=120)
        assert len(suite.records) == 2

    def test_events_stream_is_ndjson(self, server):
        job = submit_suite(_requests(), url=server)
        result(job, url=server, timeout_s=120)  # wait for completion
        with urllib.request.urlopen(
            f"{server}/v1/jobs/{job}/events", timeout=30
        ) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            events = [
                json.loads(line)
                for line in response.read().decode("utf-8").splitlines()
            ]
        kinds = [event["type"] for event in events]
        assert kinds.count("record") == 3
        assert kinds[-1] == "status"
        assert events[-1]["status"] == "done"
        assert [event["seq"] for event in events] == list(range(len(events)))
        # Record events carry the engine record fields.
        record = next(e for e in events if e["type"] == "record")["record"]
        assert {"bench", "scheme", "wall_time_s"} <= set(record)


class TestJobStates:
    def test_result_conflict_while_running(self, server, monkeypatch):
        import repro.api as api_mod

        gate = threading.Event()
        real = api_mod.run_suite

        def gated(*args, **kwargs):
            gate.wait(30)
            return real(*args, **kwargs)

        monkeypatch.setattr(api_mod, "run_suite", gated)
        job = submit_suite(_requests()[:1], url=server)
        with pytest.raises(RuntimeError, match="not ready"):
            result(job, url=server, wait=False)
        assert poll(job, url=server)["status"] in ("queued", "running")
        gate.set()
        suite = result(job, url=server, timeout_s=120)
        assert len(suite.records) == 1

    def test_failed_job_reports_error(self, server, monkeypatch):
        import repro.api as api_mod

        def boom(*args, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(api_mod, "run_suite", boom)
        job = submit_suite(_requests()[:1], url=server)
        with pytest.raises(RuntimeError, match="engine exploded"):
            result(job, url=server, timeout_s=30)
        assert poll(job, url=server)["status"] == "failed"


class TestValidation:
    def test_unknown_benchmark_is_rejected_at_submit(self, server):
        with pytest.raises(RuntimeError, match="unknown benchmark"):
            submit_suite(
                [RunRequest("spec2017/not-a-bench", "stt", 300)], url=server
            )

    def test_unknown_backend_is_rejected_at_submit(self, server):
        with pytest.raises(RuntimeError, match="unknown backend"):
            submit_suite(_requests()[:1], url=server, backend="abacus")

    def test_empty_requests_rejected(self, server):
        with pytest.raises(RuntimeError, match="non-empty"):
            submit_suite([], url=server)

    def test_config_does_not_serialize(self, server):
        from repro.sim.config import RunConfig

        with pytest.raises(ValueError, match="cannot be sent over HTTP"):
            submit_suite(
                [RunRequest("spec2017/mcf", "stt", 300, config=RunConfig())],
                url=server,
            )

    def test_unknown_job_404(self, server):
        with pytest.raises(RuntimeError, match="no such job"):
            poll("job-9999", url=server)

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(f"{server}/v2/nothing", timeout=10)
        assert exc_info.value.code == 404

    def test_health(self, server):
        with urllib.request.urlopen(f"{server}/v1/health", timeout=10) as resp:
            payload = json.loads(resp.read())
        assert payload["status"] == "ok"
