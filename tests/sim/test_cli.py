"""Unit tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _isolated_store(tmp_path, monkeypatch):
    """Keep CLI runs from touching the repo's real result store."""
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "cli-store"))


class TestList:
    def test_lists_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "spec2017/mcf" in out
        assert "parsec/canneal" in out


class TestRun:
    def test_run_prints_scheme_table(self, capsys):
        code = main(
            ["run", "spec2017/gcc", "--length", "800", "--schemes",
             "unsafe,stt,stt+recon"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stt+recon" in out
        assert "vs unsafe" in out

    def test_unknown_benchmark_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "spec2017/doom", "--length", "500"])

    def test_malformed_label_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "mcf", "--length", "500"])

    def test_unknown_scheme_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "spec2017/gcc", "--schemes", "quantum"])

    def test_seed_override(self, capsys):
        assert main(
            ["run", "spec2017/gcc", "--length", "600", "--seed", "7",
             "--schemes", "unsafe"]
        ) == 0


class TestSuite:
    def test_suite_table_jobs_and_store(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        args = [
            "suite", "spec2017", "--length", "600", "--schemes",
            "unsafe,stt", "--jobs", "2",
        ]
        assert main(args) == 0
        captured = capsys.readouterr()
        assert "benchmark" in captured.out
        assert "mcf" in captured.out
        assert "store hits 0/" in captured.err
        assert (tmp_path / "results" / "suite_spec2017.json").exists()
        # Second invocation is served from the persistent store.
        assert main(args) == 0
        captured = capsys.readouterr()
        runs = len(captured.out.strip().splitlines()) - 2  # header + rule
        assert f"store hits {runs * 2}/{runs * 2}" in captured.err

    def test_suite_no_store_skips_memoization(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        args = [
            "suite", "spec2017", "--length", "600", "--schemes", "unsafe",
            "--no-store",
        ]
        assert main(args) == 0
        assert main(args) == 0
        assert "store hits 0/" in capsys.readouterr().err

    def test_unknown_suite_exits(self):
        with pytest.raises(SystemExit):
            main(["suite", "spec2095", "--length", "500"])

    def test_invalid_jobs_env_exits_cleanly(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "abc")
        with pytest.raises(SystemExit):
            main(["suite", "spec2017", "--length", "500", "--schemes", "unsafe"])


class TestBackendFlag:
    def test_run_accepts_backend(self, capsys):
        code = main(
            ["run", "one", "spec2017/gcc", "--length", "600",
             "--schemes", "unsafe,stt", "--backend", "threads",
             "--no-store"]
        )
        assert code == 0
        assert "unsafe" in capsys.readouterr().out

    def test_unknown_backend_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "one", "spec2017/gcc", "--backend", "abacus"])

    def test_negative_jobs_exits_cleanly(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "one", "spec2017/gcc", "--jobs", "-2"])
        assert "jobs must be >= 0" in str(exc_info.value)

    def test_serve_parser_wires_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--backend", "queue", "--jobs", "2"]
        )
        assert args.port == 9000
        assert args.backend == "queue"
        assert args.jobs == 2
        assert args.max_concurrent == 1
        assert args.host == "127.0.0.1"


class TestRobustnessFlags:
    def test_chaos_suite_completes_and_reports_failures(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        # Permanent simulated-OOM chaos: some cells must fail, yet the
        # command completes, tables n/a cells, and (because failures are
        # the chaos harness's expected output) still exits 0.
        code = main(
            [
                "suite", "spec2017", "--length", "600",
                "--schemes", "unsafe,stt",
                "--chaos", "seed=2,oom=0.6",
                "--retries", "1",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "n/a" in captured.out
        assert "MemoryError" in captured.err
        assert "fault_exhausted" in captured.err
        assert (tmp_path / "results" / "suite_spec2017.json").exists()

    def test_chaos_leaves_the_result_store_untouched(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        assert main(
            [
                "run", "spec2017/gcc", "--length", "600",
                "--schemes", "unsafe", "--chaos", "seed=1",
            ]
        ) == 0
        store_root = tmp_path / "store"
        entries = (
            list(store_root.glob("*/*.json")) if store_root.is_dir() else []
        )
        assert entries == []

    def test_real_failures_exit_nonzero_chaos_failures_exit_zero(
        self, capsys
    ):
        from repro.cli import _report_failures
        from repro.sim import ChaosConfig, RunFailure, SuiteResult
        from repro.common import SchemeKind

        failure = RunFailure(
            bench="mcf", scheme=SchemeKind.STT, seed=0, key=None,
            error_type="MemoryError", message="boom", traceback="",
            attempts=3, worker_pid=None, wall_time_s=0.1,
        )
        failed = SuiteResult({}, failures=[failure])
        # A genuine sweep with dead cells must fail the command...
        assert _report_failures(failed, chaos=None) == 1
        # ...but the same outcome under --chaos is the harness working.
        assert _report_failures(failed, chaos=ChaosConfig(oom=1.0)) == 0
        assert _report_failures(SuiteResult({}), chaos=None) == 0
        assert "MemoryError" in capsys.readouterr().err

    def test_bad_chaos_spec_exits_cleanly(self):
        with pytest.raises(SystemExit):
            main(["run", "spec2017/gcc", "--chaos", "bogus=1"])

    def test_resume_reuses_checkpoints(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        args = [
            "suite", "spec2017", "--length", "600", "--schemes", "unsafe",
            "--retries", "2",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        err = capsys.readouterr().err
        # Every cell journaled+stored by the first sweep is a store hit.
        assert "store hits 0/" not in err

    def test_fresh_sweep_clears_stale_journal(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        args = [
            "suite", "spec2017", "--length", "600", "--schemes", "unsafe",
            "--retries", "1",
        ]
        assert main(args) == 0
        journal = tmp_path / "store" / "journal.jsonl"
        assert journal.exists()
        before = journal.read_text()
        assert main(args) == 0  # no --resume: journal restarts from zero
        after = journal.read_text()
        assert len(after.splitlines()) == len(before.splitlines())


class TestSamplingFlag:
    def test_run_sampled_prints_ci(self, capsys):
        code = main(
            ["run", "spec2017/mcf", "--length", "1200", "--schemes",
             "unsafe", "--sampling", "on"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "±" in out  # estimated IPCs render as value±ci

    def test_run_exact_has_no_ci(self, capsys):
        assert main(
            ["run", "spec2017/mcf", "--length", "800", "--schemes", "unsafe"]
        ) == 0
        assert "±" not in capsys.readouterr().out

    def test_bad_sampling_spec_exits_cleanly(self):
        with pytest.raises(SystemExit):
            main(
                ["run", "spec2017/mcf", "--length", "800",
                 "--sampling", "zorp=1"]
            )

    def test_sampling_conflicts_with_trace(self, tmp_path):
        with pytest.raises(SystemExit, match="telemetry"):
            main(
                ["run", "spec2017/mcf", "--length", "800", "--sampling",
                 "on", "--trace", str(tmp_path / "trace.json")]
            )

    def test_suite_accepts_sampling(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["suite", "spec2017", "--length", "800", "--schemes",
             "unsafe,stt", "--sampling", "ci=0.05,conf=0.9", "--no-store"]
        ) == 0
        out = capsys.readouterr().out
        assert "±" in out

    def test_sweep_accepts_sampling(self, capsys):
        assert main(
            ["sweep", "lpt", "spec2017/mcf", "--length", "800",
             "--sampling", "on"]
        ) == 0


class TestLeakage:
    def test_leakage_report(self, capsys):
        assert main(["leakage", "spec2017/mcf", "--length", "1200"]) == 0
        out = capsys.readouterr().out
        assert "DIFT leaked" in out
        assert "pairs / DIFT" in out


class TestSweeps:
    def test_sweep_lpt(self, capsys):
        assert main(["sweep-lpt", "spec2017/gcc", "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "LPT/64" in out

    def test_sweep_levels(self, capsys):
        assert main(["sweep-levels", "spec2017/gcc", "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "L1+L2" in out


class TestTraceWorkflow:
    def test_save_and_replay(self, capsys, tmp_path):
        path = str(tmp_path / "t.trace")
        assert main(["save-trace", "spec2017/gcc", path, "--length", "600"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert main(["replay", path, "--schemes", "unsafe,stt+recon"]) == 0
        out = capsys.readouterr().out
        assert "stt+recon" in out
        assert "pairs" in out

    def test_replay_missing_file_exits(self):
        with pytest.raises(SystemExit):
            main(["replay", "/nonexistent.trace"])

    def test_spt_scheme_available(self, capsys):
        assert main(
            ["run", "spec2017/gcc", "--length", "600", "--schemes",
             "unsafe,stt+spt"]
        ) == 0
        assert "stt+spt" in capsys.readouterr().out


class TestGroupedCommands:
    """The run/sweep/telemetry groups and their deprecated aliases."""

    def test_run_one_new_form(self, capsys, recwarn):
        code = main(
            ["run", "one", "spec2017/gcc", "--length", "600",
             "--schemes", "unsafe"]
        )
        assert code == 0
        assert "unsafe" in capsys.readouterr().out
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_new_forms_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["run", "suite", "spec2017"])
        assert args.suite == "spec2017"
        args = parser.parse_args(["run", "replay", "x.trace"])
        assert args.path == "x.trace"
        args = parser.parse_args(["run", "leakage", "spec2017/gcc"])
        assert args.benchmark == "spec2017/gcc"
        args = parser.parse_args(["sweep", "lpt", "spec2017/mcf"])
        assert args.benchmark == "spec2017/mcf"
        args = parser.parse_args(["sweep", "levels", "spec2017/mcf"])
        assert args.benchmark == "spec2017/mcf"
        args = parser.parse_args(["telemetry", "summarize", "t.json"])
        assert args.path == "t.json"

    def test_legacy_run_benchmark_warns(self, capsys):
        with pytest.warns(DeprecationWarning, match="run one"):
            code = main(
                ["run", "spec2017/gcc", "--length", "600",
                 "--schemes", "unsafe"]
            )
        assert code == 0
        capsys.readouterr()

    def test_legacy_suite_alias_warns(self):
        with pytest.warns(DeprecationWarning, match="run suite"):
            with pytest.raises(SystemExit):
                main(["suite", "nonsuite", "--length", "500"])

    def test_legacy_sweep_aliases_warn(self):
        with pytest.warns(DeprecationWarning, match="sweep lpt"):
            with pytest.raises(SystemExit):
                main(["sweep-lpt", "badlabel"])
        with pytest.warns(DeprecationWarning, match="sweep levels"):
            with pytest.raises(SystemExit):
                main(["sweep-levels", "badlabel"])

    def test_legacy_telemetry_alias_warns(self):
        with pytest.warns(DeprecationWarning, match="telemetry summarize"):
            with pytest.raises(SystemExit):
                main(["telemetry", "/nonexistent.json"])

    def test_telemetry_summarize_new_form_does_not_warn(self, recwarn):
        with pytest.raises(SystemExit):
            main(["telemetry", "summarize", "/nonexistent.json"])
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]


class TestRedteam:
    def test_matrix_prints_verdicts_and_saves_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_gadgets.json"
        code = main(
            ["redteam", "matrix", "--gadgets",
             "v1_bounds_bypass,reveal_rederef", "--no-audit",
             "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "v1_bounds_bypass" in out
        assert "leak" in out and "protected" in out and "benign" in out
        payload = json.loads(out_path.read_text())
        assert payload["summary"]["ok"] is True

    def test_matrix_regression_gate(self, capsys, tmp_path):
        """A committed matrix with a different verdict fails the run."""
        baseline = {
            "verdicts": {"v1_bounds_bypass": {"unsafe": "protected"}}
        }
        expected = tmp_path / "expected.json"
        expected.write_text(json.dumps(baseline))
        code = main(
            ["redteam", "matrix", "--gadgets", "v1_bounds_bypass",
             "--schemes", "unsafe", "--no-audit",
             "--out", str(tmp_path / "out.json"),
             "--expected", str(expected)]
        )
        assert code == 1
        assert "regression" in capsys.readouterr().err

    def test_matrix_matches_committed_expected_matrix(self, capsys, tmp_path):
        expected = (
            Path(__file__).resolve().parents[1]
            / "data" / "redteam_expected_matrix.json"
        )
        code = main(
            ["redteam", "matrix", "--gadgets", "v1_indexed", "--no-audit",
             "--out", str(tmp_path / "out.json"),
             "--expected", str(expected)]
        )
        assert code == 0
        capsys.readouterr()

    def test_matrix_unknown_gadget_exits(self):
        with pytest.raises(SystemExit):
            main(["redteam", "matrix", "--gadgets", "heartbleed",
                  "--no-audit"])

    def test_audit_table(self, capsys):
        code = main(
            ["redteam", "audit", "--schemes", "stt+recon", "--trials", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stt+recon" in out
        assert "channel found" in out  # the unsafe control row
