"""Tests for the parallel experiment engine."""

import pytest

from repro.common import SchemeKind, SystemParams
from repro.sim import RunConfig, run_suite
from repro.sim.engine import (
    RunSpec,
    SuiteResult,
    execute_specs,
    resolve_jobs,
    run_grid,
)
from repro.sim.store import ResultStore
from repro.workloads import get_benchmark


def _profiles():
    return [
        get_benchmark("spec2017", "gcc"),
        get_benchmark("spec2017", "lbm"),
    ]


SCHEMES = (SchemeKind.UNSAFE, SchemeKind.STT)


class TestResolveJobs:
    def test_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_env_zero_means_all_cores(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_negative_argument_raises(self):
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            resolve_jobs(-4)

    def test_negative_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "-1")
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            resolve_jobs()

    def test_argument_beats_negative_env(self, monkeypatch):
        # A valid explicit argument must not even look at a bad env var.
        monkeypatch.setenv("REPRO_JOBS", "-1")
        assert resolve_jobs(2) == 2


class TestDeterminism:
    def test_jobs1_and_jobs4_identical(self):
        """The acceptance bar: worker fan-out must not change results."""
        serial = run_grid(_profiles(), SCHEMES, 900, jobs=1)
        parallel = run_grid(_profiles(), SCHEMES, 900, jobs=4)
        assert set(serial) == set(parallel)
        for key in serial:
            assert serial[key].cycles == parallel[key].cycles, key
            assert (
                serial[key].stats.as_dict() == parallel[key].stats.as_dict()
            ), key
            for a, b in zip(serial[key].per_core, parallel[key].per_core):
                assert a.as_dict() == b.as_dict()

    def test_multithreaded_cells_identical(self):
        profile = get_benchmark("parsec", "canneal")
        config = RunConfig(threads=2)
        serial = run_grid([profile], SCHEMES, 700, config=config, jobs=1)
        parallel = run_grid([profile], SCHEMES, 700, config=config, jobs=2)
        for key in serial:
            assert serial[key].cycles == parallel[key].cycles


class TestRunSpec:
    def test_build_resolves_defaults(self):
        spec = RunSpec.build(
            _profiles()[0], SchemeKind.STT, 1000, RunConfig(threads=2)
        )
        assert spec.params == SystemParams(num_cores=2)
        assert spec.warmup_uops == 400
        assert spec.threads == 2

    def test_trace_key_shared_across_schemes(self):
        config = RunConfig()
        profile = _profiles()[0]
        a = RunSpec.build(profile, SchemeKind.UNSAFE, 1000, config)
        b = RunSpec.build(profile, SchemeKind.STT, 1000, config)
        assert a.trace_key == b.trace_key
        assert a.key() != b.key()


class TestExecuteSpecs:
    def test_results_in_spec_order(self):
        config = RunConfig()
        specs = [
            RunSpec.build(profile, scheme, 700, config)
            for profile in _profiles()
            for scheme in SCHEMES
        ]
        results, records = execute_specs(specs, config=config, jobs=1)
        assert [r.profile.name for r in results] == ["gcc", "gcc", "lbm", "lbm"]
        assert [r.scheme for r in results] == [
            SchemeKind.UNSAFE,
            SchemeKind.STT,
            SchemeKind.UNSAFE,
            SchemeKind.STT,
        ]
        assert len(records) == 4
        assert all(record.wall_time_s > 0 for record in records)
        assert all(record.uops_per_sec > 0 for record in records)

    def test_store_short_circuits_execution(self, tmp_path):
        config = RunConfig()
        specs = [RunSpec.build(_profiles()[0], SchemeKind.UNSAFE, 700, config)]
        store = ResultStore(tmp_path)
        first, _ = execute_specs(specs, config=config, store=store)
        again, records = execute_specs(specs, config=config, store=store)
        assert records[0].from_store
        assert first[0].cycles == again[0].cycles


class TestRunSuiteIntegration:
    def test_run_suite_parallel_matches_serial(self):
        serial = run_suite(_profiles(), SCHEMES, 800, jobs=1)
        parallel = run_suite(_profiles(), SCHEMES, 800, jobs=2)
        assert isinstance(parallel, SuiteResult)
        for key in serial:
            assert serial[key].cycles == parallel[key].cycles

    def test_run_suite_reads_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        suite = run_suite(_profiles()[:1], SCHEMES, 700)
        assert len(suite) == 2
        assert all(result.ipc > 0 for result in suite.values())


class TestSeededFanOut:
    def test_seeds_parallel_matches_serial(self):
        from repro.sim import run_benchmark_seeds

        profile = get_benchmark("spec2017", "gcc")
        serial = run_benchmark_seeds(
            profile, SchemeKind.UNSAFE, 900, seeds=(1, 2, 3), jobs=1
        )
        parallel = run_benchmark_seeds(
            profile, SchemeKind.UNSAFE, 900, seeds=(1, 2, 3), jobs=3
        )
        assert serial.ipcs == parallel.ipcs
        assert [r.profile.seed for r in serial.runs] == [1, 2, 3]
