"""Unit tests for reporting helpers and parameter sweeps."""

import math

import pytest

from repro.common import CacheLevel, SchemeKind, SystemParams
from repro.sim import (
    format_table,
    geomean,
    lpt_size_variants,
    overhead,
    overhead_reduction,
    recon_level_variants,
)


class TestGeomean:
    def test_basic(self):
        assert abs(geomean([2.0, 8.0]) - 4.0) < 1e-12

    def test_single(self):
        assert abs(geomean([3.0]) - 3.0) < 1e-12

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_skips_nonpositive_with_warning(self):
        with pytest.warns(RuntimeWarning, match="skipped 1 non-positive"):
            result = geomean([2.0, 8.0, 0.0])
        assert abs(result - 4.0) < 1e-12

    def test_all_nonpositive_returns_zero(self):
        with pytest.warns(RuntimeWarning, match="skipped 2 non-positive"):
            assert geomean([0.0, -1.0]) == 0.0

    def test_matches_log_definition(self):
        values = [0.9, 0.95, 1.0, 0.81]
        expected = math.exp(sum(math.log(v) for v in values) / 4)
        assert abs(geomean(values) - expected) < 1e-12


class TestSuiteNormalizedRows:
    class _FakeResult:
        def __init__(self, ipc):
            self.ipc = ipc

    def test_na_when_baseline_never_commits(self):
        from repro.sim import suite_normalized_rows

        results = {
            ("b1", SchemeKind.UNSAFE): self._FakeResult(0.0),
            ("b1", SchemeKind.STT): self._FakeResult(0.5),
        }
        rows = suite_normalized_rows(results, ["b1"], [SchemeKind.STT])
        assert rows[-1] == ["geomean", "n/a"]

    def test_geomean_row_over_positive_cells(self):
        from repro.sim import suite_normalized_rows

        results = {
            ("b1", SchemeKind.UNSAFE): self._FakeResult(1.0),
            ("b1", SchemeKind.STT): self._FakeResult(0.5),
            ("b2", SchemeKind.UNSAFE): self._FakeResult(1.0),
            ("b2", SchemeKind.STT): self._FakeResult(0.8),
        }
        rows = suite_normalized_rows(
            results, ["b1", "b2"], [SchemeKind.STT]
        )
        assert rows[-1][0] == "geomean"
        assert abs(float(rows[-1][1]) - math.sqrt(0.5 * 0.8)) < 1e-3

    def test_failed_cell_renders_na_and_skips_geomean(self):
        """A supervised suite with a failed cell still tables cleanly."""
        from repro.sim import suite_normalized_rows

        results = {
            ("b1", SchemeKind.UNSAFE): self._FakeResult(1.0),
            ("b1", SchemeKind.STT): self._FakeResult(0.5),
            ("b2", SchemeKind.UNSAFE): self._FakeResult(1.0),
            # ("b2", STT) failed: absent from the mapping entirely.
        }
        rows = suite_normalized_rows(
            results, ["b1", "b2"], [SchemeKind.STT]
        )
        assert rows[0] == ["b1", "0.500"]
        assert rows[1] == ["b2", "n/a"]
        assert rows[-1] == ["geomean", "0.500"]

    def test_failed_baseline_renders_whole_bench_na(self):
        from repro.sim import suite_normalized_rows

        results = {
            # ("b1", UNSAFE) failed: every b1 ratio is undefined.
            ("b1", SchemeKind.STT): self._FakeResult(0.5),
        }
        rows = suite_normalized_rows(results, ["b1"], [SchemeKind.STT])
        assert rows[0] == ["b1", "n/a"]
        assert rows[-1] == ["geomean", "n/a"]


class TestFailureRows:
    def test_rows_compress_the_failure(self):
        from repro.sim import RunFailure, failure_rows

        failure = RunFailure(
            bench="mcf",
            scheme=SchemeKind.STT,
            seed=7,
            key=None,
            error_type="SimulationHangError",
            message="exceeded 100 cycles; likely hang\nsecond line",
            traceback="...",
            attempts=3,
            worker_pid=42,
            wall_time_s=1.0,
            diagnostics={"cycle": 100},
        )
        rows = failure_rows([failure])
        assert rows == [
            [
                "mcf",
                "stt",
                "SimulationHangError",
                "3",
                "exceeded 100 cycles; likely hang",
            ]
        ]

    def test_long_messages_are_truncated(self):
        from repro.sim import RunFailure, failure_rows

        failure = RunFailure(
            bench="b",
            scheme=SchemeKind.UNSAFE,
            seed=0,
            key=None,
            error_type="ValueError",
            message="x" * 200,
            traceback="",
            attempts=1,
            worker_pid=None,
            wall_time_s=0.0,
        )
        (row,) = failure_rows([failure])
        assert len(row[-1]) == 60
        assert row[-1].endswith("...")


class TestOverhead:
    def test_overhead(self):
        assert abs(overhead(0.9) - 0.1) < 1e-12

    def test_reduction_matches_paper_arithmetic(self):
        # Paper: STT 8.9% -> 4.9% is a 45% reduction.
        red = overhead_reduction(0.089, 0.049)
        assert abs(red - 0.449) < 0.01

    def test_reduction_zero_base(self):
        assert overhead_reduction(0.0, 0.0) == 0.0
        assert overhead_reduction(-0.01, 0.0) == 0.0


class TestFormatTable:
    def test_alignment_and_separator(self):
        table = format_table(["a", "bbb"], [["x", "y"], ["long", "z"]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_cells_align(self):
        table = format_table(["col"], [["a"], ["bb"]])
        lines = table.splitlines()
        assert all(len(line) <= max(len(l) for l in lines) for line in lines)


class TestSweeps:
    def test_recon_level_variants(self):
        variants = dict(recon_level_variants())
        assert set(variants) == {"L1", "L1+L2", "all-levels"}
        assert variants["L1"].recon_levels == (CacheLevel.L1,)
        assert variants["L1+L2"].recon_levels == (
            CacheLevel.L1,
            CacheLevel.L2,
        )
        assert variants["all-levels"].recon_levels is None
        for params in variants.values():
            params.validate()

    def test_lpt_size_variants(self):
        base = SystemParams()
        variants = lpt_size_variants(base)
        labels = [label for label, _ in variants]
        assert labels[0] == "LPT"
        assert labels[-1] == "LPT/64"
        sizes = [p.effective_lpt_entries for _, p in variants]
        assert sizes[0] == base.core.phys_regs
        assert sizes == sorted(sizes, reverse=True)
        for _, params in variants:
            params.validate()
