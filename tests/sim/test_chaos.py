"""Tests for the deterministic fault-injection harness."""

import pytest

pytestmark = pytest.mark.chaos

from repro.sim.chaos import (
    CORRUPT_PAYLOAD,
    ChaosConfig,
    ChaosFault,
    inject,
    parse_chaos,
)


class TestChaosConfigValidation:
    def test_defaults_inject_nothing(self):
        chaos = ChaosConfig()
        assert not chaos.active()
        assert chaos.decide("any-key", 0) is None

    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            ChaosConfig(crash=-0.1)
        with pytest.raises(ValueError):
            ChaosConfig(hang=1.5)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValueError):
            ChaosConfig(crash=0.6, oom=0.6)
        ChaosConfig(crash=0.5, oom=0.5)  # exactly 1 is fine

    def test_hang_duration_positive(self):
        with pytest.raises(ValueError):
            ChaosConfig(hang_s=0)

    def test_faulty_attempts_positive_or_none(self):
        with pytest.raises(ValueError):
            ChaosConfig(faulty_attempts=0)
        ChaosConfig(faulty_attempts=1)
        ChaosConfig(faulty_attempts=None)


class TestDecideDeterminism:
    def test_same_inputs_same_fault(self):
        chaos = ChaosConfig(seed=7, crash=0.3, hang=0.3, corrupt=0.3)
        decisions = [chaos.decide(f"key-{i}", 0) for i in range(50)]
        again = [chaos.decide(f"key-{i}", 0) for i in range(50)]
        assert decisions == again
        assert any(d is not None for d in decisions)

    def test_seed_changes_decisions(self):
        a = ChaosConfig(seed=1, crash=0.5)
        b = ChaosConfig(seed=2, crash=0.5)
        keys = [f"key-{i}" for i in range(100)]
        assert [a.decide(k, 0) for k in keys] != [b.decide(k, 0) for k in keys]

    def test_attempt_changes_decisions(self):
        chaos = ChaosConfig(seed=7, crash=0.5)
        keys = [f"key-{i}" for i in range(100)]
        assert [chaos.decide(k, 0) for k in keys] != [
            chaos.decide(k, 1) for k in keys
        ]

    def test_rates_are_roughly_honoured(self):
        chaos = ChaosConfig(seed=0, crash=0.25, oom=0.25)
        decisions = [chaos.decide(f"key-{i}", 0) for i in range(400)]
        crashes = decisions.count("crash")
        ooms = decisions.count("oom")
        nones = decisions.count(None)
        assert 60 <= crashes <= 140
        assert 60 <= ooms <= 140
        assert 120 <= nones <= 280

    def test_certain_fault_always_fires(self):
        chaos = ChaosConfig(oom=1.0)
        assert all(
            chaos.decide(f"key-{i}", 0) == "oom" for i in range(20)
        )

    def test_faulty_attempts_gate_makes_faults_transient(self):
        chaos = ChaosConfig(oom=1.0, faulty_attempts=1)
        assert chaos.decide("key", 0) == "oom"
        assert chaos.decide("key", 1) is None
        assert chaos.decide("key", 5) is None


class TestInjectInline:
    """Process-level faults degrade to exceptions outside pool workers."""

    def test_no_chaos_is_a_no_op(self):
        assert inject(None, "key", 0) is None

    def test_crash_raises_inline(self):
        chaos = ChaosConfig(crash=1.0)
        with pytest.raises(ChaosFault) as info:
            inject(chaos, "key", 0)
        assert info.value.kind == "crash"
        assert info.value.attempt == 0

    def test_hang_raises_inline(self):
        chaos = ChaosConfig(hang=1.0, hang_s=60.0)
        with pytest.raises(ChaosFault) as info:
            inject(chaos, "key", 0)  # must not actually sleep 60s
        assert info.value.kind == "hang"

    def test_oom_is_simulated(self):
        chaos = ChaosConfig(oom=1.0)
        with pytest.raises(MemoryError):
            inject(chaos, "key", 0)

    def test_corrupt_returns_marker(self):
        chaos = ChaosConfig(corrupt=1.0)
        assert inject(chaos, "key", 0) == "corrupt"
        assert CORRUPT_PAYLOAD == {"chaos": "corrupt payload"}


class TestParseChaos:
    def test_none_and_empty_mean_off(self):
        assert parse_chaos(None) is None
        assert parse_chaos("") is None
        assert parse_chaos("  ") is None

    def test_full_spec(self):
        chaos = parse_chaos(
            "seed=7,crash=0.2,hang=0.1,corrupt=0.1,oom=0.05,"
            "hang_s=3.5,attempts=1"
        )
        assert chaos == ChaosConfig(
            seed=7,
            crash=0.2,
            hang=0.1,
            corrupt=0.1,
            oom=0.05,
            hang_s=3.5,
            faulty_attempts=1,
        )

    def test_unknown_field_fails_loudly(self):
        with pytest.raises(ValueError, match="bogus"):
            parse_chaos("bogus=1")

    def test_malformed_value_fails_loudly(self):
        with pytest.raises(ValueError, match="crash"):
            parse_chaos("crash=lots")

    def test_missing_equals_fails_loudly(self):
        with pytest.raises(ValueError, match="name=value"):
            parse_chaos("crash")

    def test_invalid_rates_rejected_by_config(self):
        with pytest.raises(ValueError):
            parse_chaos("crash=0.9,oom=0.9")
