"""Tests for grid runs and normalized-row reporting."""

from repro.common import SchemeKind
from repro.sim import run_suite, suite_normalized_rows
from repro.sim.runner import TraceCache
from repro.workloads import get_benchmark


class TestRunSuite:
    def test_grid_has_every_cell(self):
        profiles = [
            get_benchmark("spec2017", "gcc"),
            get_benchmark("spec2017", "lbm"),
        ]
        schemes = (SchemeKind.UNSAFE, SchemeKind.STT)
        results = run_suite(profiles, schemes, 1000, cache=TraceCache())
        assert set(results) == {
            ("gcc", SchemeKind.UNSAFE),
            ("gcc", SchemeKind.STT),
            ("lbm", SchemeKind.UNSAFE),
            ("lbm", SchemeKind.STT),
        }
        for result in results.values():
            assert result.ipc > 0

    def test_normalized_rows_include_geomean(self):
        profiles = [get_benchmark("spec2017", "gcc")]
        schemes = (SchemeKind.UNSAFE, SchemeKind.STT, SchemeKind.STT_RECON)
        results = run_suite(profiles, schemes, 1000, cache=TraceCache())
        rows = suite_normalized_rows(
            results, ["gcc"], (SchemeKind.STT, SchemeKind.STT_RECON)
        )
        assert rows[-1][0] == "geomean"
        assert len(rows) == 2
        for row in rows:
            assert len(row) == 3
            for cell in row[1:]:
                assert 0 < float(cell) <= 1.5

    def test_warmup_passthrough(self):
        profiles = [get_benchmark("spec2017", "gcc")]
        cache = TraceCache()
        warm = run_suite(
            profiles, (SchemeKind.UNSAFE,), 2000, cache=cache, warmup_uops=1000
        )
        cold = run_suite(
            profiles, (SchemeKind.UNSAFE,), 2000, cache=cache, warmup_uops=0
        )
        assert (
            warm[("gcc", SchemeKind.UNSAFE)].stats.committed_uops
            < cold[("gcc", SchemeKind.UNSAFE)].stats.committed_uops
        )
