"""Tests for grid runs, SuiteResult, and normalized-row reporting."""

from repro.common import SchemeKind
from repro.sim import RunConfig, TraceCache, run_suite, suite_normalized_rows
from repro.sim.engine import SuiteResult
from repro.workloads import get_benchmark


class TestRunSuite:
    def test_grid_has_every_cell(self):
        profiles = [
            get_benchmark("spec2017", "gcc"),
            get_benchmark("spec2017", "lbm"),
        ]
        schemes = (SchemeKind.UNSAFE, SchemeKind.STT)
        results = run_suite(
            profiles, schemes, 1000, config=RunConfig(cache=TraceCache())
        )
        assert isinstance(results, SuiteResult)
        assert set(results) == {
            ("gcc", SchemeKind.UNSAFE),
            ("gcc", SchemeKind.STT),
            ("lbm", SchemeKind.UNSAFE),
            ("lbm", SchemeKind.STT),
        }
        for result in results.values():
            assert result.ipc > 0

    def test_normalized_rows_include_geomean(self):
        profiles = [get_benchmark("spec2017", "gcc")]
        schemes = (SchemeKind.UNSAFE, SchemeKind.STT, SchemeKind.STT_RECON)
        results = run_suite(
            profiles, schemes, 1000, config=RunConfig(cache=TraceCache())
        )
        rows = suite_normalized_rows(
            results, ["gcc"], (SchemeKind.STT, SchemeKind.STT_RECON)
        )
        assert rows[-1][0] == "geomean"
        assert len(rows) == 2
        for row in rows:
            assert len(row) == 3
            for cell in row[1:]:
                assert 0 < float(cell) <= 1.5

    def test_warmup_passthrough(self):
        profiles = [get_benchmark("spec2017", "gcc")]
        cache = TraceCache()
        warm = run_suite(
            profiles,
            (SchemeKind.UNSAFE,),
            2000,
            config=RunConfig(cache=cache, warmup_uops=1000),
        )
        cold = run_suite(
            profiles,
            (SchemeKind.UNSAFE,),
            2000,
            config=RunConfig(cache=cache, warmup_uops=0),
        )
        assert (
            warm[("gcc", SchemeKind.UNSAFE)].stats.committed_uops
            < cold[("gcc", SchemeKind.UNSAFE)].stats.committed_uops
        )


class TestSuiteResult:
    def _suite(self):
        profiles = [
            get_benchmark("spec2017", "gcc"),
            get_benchmark("spec2017", "lbm"),
        ]
        schemes = (SchemeKind.UNSAFE, SchemeKind.STT)
        return run_suite(
            profiles, schemes, 1000, config=RunConfig(cache=TraceCache())
        )

    def test_get_by_bench_and_scheme(self):
        suite = self._suite()
        cell = suite.get("gcc", SchemeKind.STT)
        assert cell is suite[("gcc", SchemeKind.STT)]
        assert suite.get("gcc", SchemeKind.NDA) is None
        # Dict-style single-key get keeps working.
        assert suite.get(("gcc", SchemeKind.STT)) is cell

    def test_grid_order_properties(self):
        suite = self._suite()
        assert suite.benches == ["gcc", "lbm"]
        assert suite.schemes == [SchemeKind.UNSAFE, SchemeKind.STT]

    def test_normalized_ipc_against_baseline(self):
        suite = self._suite()
        normalized = suite.normalized_ipc(SchemeKind.UNSAFE)
        assert normalized[("gcc", SchemeKind.UNSAFE)] == 1.0
        expected = (
            suite.get("gcc", SchemeKind.STT).ipc
            / suite.get("gcc", SchemeKind.UNSAFE).ipc
        )
        assert abs(normalized[("gcc", SchemeKind.STT)] - expected) < 1e-12

    def test_json_round_trip(self):
        suite = self._suite()
        restored = SuiteResult.from_json(suite.to_json())
        assert set(restored) == set(suite)
        for key in suite:
            assert restored[key].cycles == suite[key].cycles
            assert restored[key].stats.as_dict() == suite[key].stats.as_dict()
            assert restored[key].profile == suite[key].profile
        assert len(restored.records) == len(suite.records)

    def test_records_and_summary(self):
        suite = self._suite()
        assert len(suite.records) == 4
        assert suite.store_hits == 0
        assert suite.store_misses == 4
        assert all(not record.from_store for record in suite.records)
        assert "4 runs" in suite.summary()
