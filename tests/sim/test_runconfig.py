"""Tests for RunConfig, the deprecation shim, and the bounded TraceCache."""

import pytest

from repro.common import SchemeKind, SystemParams
from repro.sim import RunConfig, TraceCache, run_benchmark, run_suite
from repro.workloads import get_benchmark


class TestRunConfig:
    def test_frozen(self):
        config = RunConfig()
        with pytest.raises(Exception):
            config.threads = 4

    def test_resolved_params_defaults_to_thread_count(self):
        assert RunConfig(threads=4).resolved_params() == SystemParams(
            num_cores=4
        )
        explicit = SystemParams(lpt_entries=8)
        assert RunConfig(params=explicit).resolved_params() is explicit

    def test_resolved_warmup_defaults_to_40_percent(self):
        assert RunConfig().resolved_warmup(1000) == 400
        assert RunConfig(warmup_uops=7).resolved_warmup(1000) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            RunConfig(threads=0)
        with pytest.raises(ValueError):
            RunConfig(warmup_uops=-1)

    def test_cache_excluded_from_equality(self):
        assert RunConfig(cache=TraceCache()) == RunConfig(cache=TraceCache())

    def test_replace(self):
        assert RunConfig().replace(threads=2).threads == 2


class TestDeprecationShim:
    def test_legacy_kwargs_warn_and_still_work(self):
        profile = get_benchmark("spec2017", "gcc")
        with pytest.warns(DeprecationWarning):
            legacy = run_benchmark(
                profile, SchemeKind.UNSAFE, 800, cache=TraceCache(), warmup_uops=0
            )
        modern = run_benchmark(
            profile,
            SchemeKind.UNSAFE,
            800,
            config=RunConfig(cache=TraceCache(), warmup_uops=0),
        )
        assert legacy.cycles == modern.cycles
        assert legacy.stats.as_dict() == modern.stats.as_dict()

    def test_run_suite_legacy_kwargs_warn(self):
        profiles = [get_benchmark("spec2017", "gcc")]
        with pytest.warns(DeprecationWarning):
            suite = run_suite(
                profiles, (SchemeKind.UNSAFE,), 700, cache=TraceCache()
            )
        assert suite.get("gcc", SchemeKind.UNSAFE).ipc > 0

    def test_warning_names_the_replacement_fields(self):
        profile = get_benchmark("spec2017", "gcc")
        with pytest.warns(
            DeprecationWarning,
            match=r"config=RunConfig\(cache=\.\.\., warmup_uops=\.\.\.\)",
        ):
            run_benchmark(
                profile, SchemeKind.UNSAFE, 800, cache=TraceCache(), warmup_uops=0
            )
        with pytest.warns(
            DeprecationWarning, match=r"config=RunConfig\(threads=\.\.\.\)"
        ):
            run_benchmark(profile, SchemeKind.UNSAFE, 800, threads=1)

    def test_mixing_config_and_legacy_kwargs_is_an_error(self):
        profile = get_benchmark("spec2017", "gcc")
        with pytest.raises(TypeError):
            run_benchmark(
                profile,
                SchemeKind.UNSAFE,
                800,
                config=RunConfig(),
                threads=2,
            )

    def test_config_path_does_not_warn(self, recwarn):
        profile = get_benchmark("spec2017", "gcc")
        run_benchmark(
            profile, SchemeKind.UNSAFE, 800, config=RunConfig(warmup_uops=0)
        )
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]


class TestTraceCacheBudget:
    def test_entry_budget_evicts_lru(self):
        cache = TraceCache(max_entries=2)
        gcc = get_benchmark("spec2017", "gcc")
        lbm = get_benchmark("spec2017", "lbm")
        mcf = get_benchmark("spec2017", "mcf")
        cache.get(gcc, 1, 600)
        cache.get(lbm, 1, 600)
        cache.get(gcc, 1, 600)  # refresh gcc: lbm is now LRU
        cache.get(mcf, 1, 600)
        assert len(cache) == 2
        hits = cache.hits
        cache.get(gcc, 1, 600)
        assert cache.hits == hits + 1  # survivor
        misses = cache.misses
        cache.get(lbm, 1, 600)
        assert cache.misses == misses + 1  # evicted

    def test_byte_budget_evicts(self):
        cache = TraceCache(max_bytes=1)  # everything over budget
        gcc = get_benchmark("spec2017", "gcc")
        lbm = get_benchmark("spec2017", "lbm")
        cache.get(gcc, 1, 600)
        cache.get(lbm, 1, 600)
        # The newest entry always survives; older ones are evicted.
        assert len(cache) == 1

    def test_reuses_within_budget(self):
        cache = TraceCache()
        gcc = get_benchmark("spec2017", "gcc")
        first = cache.get(gcc, 1, 600)
        second = cache.get(gcc, 1, 600)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_clear(self):
        cache = TraceCache()
        cache.get(get_benchmark("spec2017", "gcc"), 1, 600)
        cache.clear()
        assert len(cache) == 0
        assert cache.approx_bytes == 0

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError):
            TraceCache(max_entries=0)
        with pytest.raises(ValueError):
            TraceCache(max_bytes=0)
