"""Tests for the pluggable execution-backend seam.

Parity tests run the same specs through every backend and demand
bit-identical simulation results — the simulation outcome is a pure
function of the RunSpec, so only wall-clock bookkeeping may differ.
Queue tests spawn real detached worker processes; lengths are kept tiny
so each run is milliseconds of simulation.
"""

import os

import pytest

from repro.common import SchemeKind
from repro.sim import RunConfig
from repro.sim.backends import (
    BACKEND_NAMES,
    CorruptResultError,
    InlineBackend,
    ProcessBackend,
    QueueBackend,
    TaskFailedError,
    ThreadBackend,
    WorkerDeath,
    resolve_backend,
)
from repro.sim.backends.base import (
    TaskHandle,
    default_backend_name,
    parse_envelope,
)
from repro.sim.chaos import CORRUPT_PAYLOAD, ChaosConfig
from repro.sim.engine import RunSpec, execute_specs
from repro.sim.store import ResultStore
from repro.sim.supervisor import FaultPolicy, SuiteJournal, Supervisor
from repro.workloads import get_benchmark

LENGTH = 400
SCHEMES = (SchemeKind.UNSAFE, SchemeKind.STT)


def _specs(config=None, names=("mcf", "gcc")):
    config = config or RunConfig()
    return [
        RunSpec.build(get_benchmark("spec2017", name), scheme, LENGTH, config)
        for name in names
        for scheme in SCHEMES
    ]


class TestSeam:
    def test_backend_names(self):
        assert BACKEND_NAMES == ("inline", "threads", "process", "queue")

    def test_default_backend_tracks_jobs(self):
        assert default_backend_name(1) == "inline"
        assert default_backend_name(4) == "process"

    def test_resolve_by_name(self):
        backend, owned = resolve_backend("threads", workers=2)
        assert isinstance(backend, ThreadBackend)
        assert owned

    def test_resolve_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "threads")
        backend, owned = resolve_backend(None, jobs=1)
        assert isinstance(backend, ThreadBackend)
        assert owned

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "threads")
        backend, _ = resolve_backend("inline", jobs=4)
        assert isinstance(backend, InlineBackend)

    def test_instance_passthrough_is_not_owned(self):
        instance = InlineBackend()
        backend, owned = resolve_backend(instance)
        assert backend is instance
        assert not owned

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("carrier-pigeon")

    def test_handle_settles_exactly_once(self):
        spec = _specs()[0]
        handle = TaskHandle(spec=spec, attempt=0, token=1)
        handle.settle_payload(("ok", None, 0.0, 0))
        with pytest.raises(RuntimeError):
            handle.settle_payload(("ok", None, 0.0, 0))
        with pytest.raises(RuntimeError):
            handle.settle_error(WorkerDeath("late"))

    def test_parse_envelope_rejects_corruption(self):
        with pytest.raises(CorruptResultError):
            parse_envelope(CORRUPT_PAYLOAD)
        with pytest.raises(CorruptResultError):
            parse_envelope(("weird", 1, 2))
        with pytest.raises(CorruptResultError):
            parse_envelope(None)


class TestParity:
    """Every backend must reproduce the inline backend's grid exactly."""

    @pytest.fixture(scope="class")
    def reference(self):
        results, records = execute_specs(_specs(), jobs=1, backend="inline")
        return results

    @pytest.mark.parametrize("name", ["threads", "process", "queue"])
    def test_backend_matches_inline(self, name, reference):
        results, records = execute_specs(_specs(), jobs=2, backend=name)
        assert len(results) == len(reference)
        for ours, theirs in zip(results, reference):
            assert ours.cycles == theirs.cycles
            assert ours.stats.as_dict() == theirs.stats.as_dict()
        assert all(record.wall_time_s >= 0.0 for record in records)

    def test_supervised_queue_matches_inline(self, reference, tmp_path):
        supervisor = Supervisor(
            FaultPolicy(),
            jobs=2,
            store=ResultStore(tmp_path / "store"),
            backend="queue",
        )
        results, records, failures = supervisor.execute(_specs())
        assert not failures
        for ours, theirs in zip(results, reference):
            assert ours.cycles == theirs.cycles
            assert ours.stats.as_dict() == theirs.stats.as_dict()


class TestBackendHealth:
    def test_inline_health(self):
        with InlineBackend() as backend:
            health = backend.health()
        assert health.name == "inline"
        assert health.workers == 1
        assert health.as_dict()["alive_workers"] == 1

    def test_queue_health_counts_live_workers(self):
        backend = QueueBackend(workers=2)
        backend.start()
        try:
            health = backend.health()
            assert health.name == "queue"
            assert health.workers == 2
        finally:
            backend.shutdown(wait=False)

    def test_engine_env_backend_selection(self, monkeypatch):
        # REPRO_BACKEND forces even single-job suites off the fast path.
        monkeypatch.setenv("REPRO_BACKEND", "threads")
        results, records = execute_specs(_specs(names=("mcf",)), jobs=1)
        assert all(result is not None for result in results)


class TestQueueChaos:
    """The work-stealing backend must survive worker kills without losing
    or duplicating any run."""

    def test_crash_faults_yield_complete_attributed_outcome(self, tmp_path):
        # seed=0 condemns three (cell, attempt) pairs on attempts 0/1;
        # faulty_attempts=2 leaves attempt 2 clean, so with retries=3
        # every cell must recover despite real worker deaths.
        chaos = ChaosConfig(seed=0, crash=0.35, faulty_attempts=2)
        specs = _specs(RunConfig(chaos=chaos))
        supervisor = Supervisor(
            FaultPolicy(retries=3),
            jobs=2,
            store=ResultStore(tmp_path / "store"),
            backend="queue",
        )
        results, records, failures = supervisor.execute(specs)
        # Zero lost runs: every spec is a result or an attributed failure.
        settled = sum(1 for result in results if result is not None)
        assert settled + len(failures) == len(specs)
        # Zero duplicated runs: one record per succeeding spec.
        assert sum(1 for record in records if record is not None) == settled
        # Transient faults: every cell recovered within its retries.
        assert not failures
        # Workers really died, and the supervisor charged the crashes.
        assert supervisor.fault_counters.get("fault_worker_crashes", 0) > 0

    def test_corrupt_payloads_are_quarantined_not_fatal(self, tmp_path):
        chaos = ChaosConfig(seed=5, corrupt=0.5, faulty_attempts=1)
        specs = _specs(RunConfig(chaos=chaos))
        supervisor = Supervisor(
            FaultPolicy(retries=2),
            jobs=2,
            store=ResultStore(tmp_path / "store"),
            backend="queue",
        )
        results, records, failures = supervisor.execute(specs)
        assert sum(1 for r in results if r is not None) + len(failures) == len(
            specs
        )


class TestEngineFailFast:
    def test_error_envelope_raises_task_failed(self):
        chaos = ChaosConfig(seed=3, oom=1.0)
        specs = _specs(RunConfig(chaos=chaos), names=("mcf",))
        with pytest.raises(TaskFailedError, match="MemoryError"):
            execute_specs(specs, jobs=2, backend="threads")


class TestKeyboardInterrupt:
    def test_engine_interrupt_tears_down_owned_backend(self, monkeypatch):
        import repro.sim.backends.local as local_mod

        real = local_mod.run_task
        calls = {"n": 0}

        def flaky(spec, attempt=0, cache=None, reraise=()):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return real(spec, attempt, cache=cache, reraise=reraise)

        monkeypatch.setattr(local_mod, "run_task", flaky)
        with pytest.raises(KeyboardInterrupt):
            execute_specs(_specs(), jobs=1, backend="inline")

    def test_supervisor_interrupt_leaves_resumable_journal(
        self, tmp_path, monkeypatch
    ):
        import repro.sim.backends.local as local_mod

        specs = _specs()
        journal = SuiteJournal(tmp_path / "journal.jsonl")
        store = ResultStore(tmp_path / "store")
        real = local_mod.run_task
        calls = {"n": 0}

        def flaky(spec, attempt=0, cache=None, reraise=()):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt
            return real(spec, attempt, cache=cache, reraise=reraise)

        monkeypatch.setattr(local_mod, "run_task", flaky)
        supervisor = Supervisor(
            FaultPolicy(),
            jobs=1,
            store=store,
            journal=journal,
            backend="inline",
        )
        with pytest.raises(KeyboardInterrupt):
            supervisor.execute(specs)
        # The two runs that finished before Ctrl-C are checkpointed.
        checkpointed = journal.load()
        assert len(checkpointed) == 2
        assert all(e["status"] == "done" for e in checkpointed.values())

        # A --resume sweep replays them and only simulates the rest.
        monkeypatch.setattr(local_mod, "run_task", real)
        resumed = Supervisor(
            FaultPolicy(),
            jobs=1,
            store=ResultStore(tmp_path / "store"),
            journal=journal,
            backend="inline",
        )
        results, records, failures = resumed.execute(specs, resume=True)
        assert not failures
        assert all(result is not None for result in results)
        replayed = sum(1 for record in records if record.from_store)
        assert replayed >= 2
