"""Unit tests for system assembly and the experiment runner."""

import dataclasses

import pytest

from repro.common import SchemeKind, SystemParams
from repro.isa import Program
from repro.sim import RunConfig, System, run_benchmark
from repro.sim.runner import TraceCache, default_trace_length
from repro.workloads import get_benchmark


def two_programs():
    progs = []
    for seed in (1, 2):
        prog = Program()
        for i in range(200):
            prog.li(1, (i * seed * 64) % 0x4000)
            prog.load(2, base=1)
            prog.alu(3, 2)
        progs.append(prog)
    return [p.trace() for p in progs]


class TestSystem:
    def test_single_core_runs_to_completion(self):
        traces = two_programs()[:1]
        result = System(SystemParams(), traces, SchemeKind.UNSAFE).run()
        assert result.per_core[0].committed_uops == 600
        assert result.cycles > 0

    def test_multicore_lockstep(self):
        traces = two_programs()
        result = System(
            SystemParams(num_cores=2), traces, SchemeKind.STT
        ).run()
        assert len(result.per_core) == 2
        assert all(s.committed_uops == 600 for s in result.per_core)
        # Execution time is the slowest core's.
        assert result.cycles == max(s.cycles for s in result.per_core)

    def test_num_cores_grows_to_fit_traces(self):
        traces = two_programs()
        system = System(SystemParams(num_cores=1), traces, SchemeKind.UNSAFE)
        assert len(system.cores) == 2
        system.run()

    def test_aggregate_sums_counters(self):
        traces = two_programs()
        result = System(
            SystemParams(num_cores=2), traces, SchemeKind.UNSAFE
        ).run()
        assert result.aggregate.committed_uops == 1200

    def test_multicore_determinism(self):
        def run_once():
            return System(
                SystemParams(num_cores=2), two_programs(), SchemeKind.STT_RECON
            ).run()

        a, b = run_once(), run_once()
        assert a.cycles == b.cycles
        for sa, sb in zip(a.per_core, b.per_core):
            assert sa.as_dict() == sb.as_dict()


class TestWarmup:
    def test_warmup_excludes_prefix(self):
        traces = two_programs()[:1]
        full = System(SystemParams(), traces, SchemeKind.UNSAFE).run()
        warmed = System(
            SystemParams(), two_programs()[:1], SchemeKind.UNSAFE, warmup_uops=300
        ).run()
        assert warmed.per_core[0].committed_uops == 300
        assert warmed.cycles < full.cycles

    def test_warmup_ipc_excludes_cold_misses(self):
        prog = Program()
        for i in range(400):
            prog.li(1, (i * 64) % 0x800)  # 32 lines: warm quickly
            prog.load(2, base=1)
        cold = System(SystemParams(), [prog.trace()], SchemeKind.UNSAFE).run()
        prog2 = Program()
        for i in range(400):
            prog2.li(1, (i * 64) % 0x800)
            prog2.load(2, base=1)
        warm = System(
            SystemParams(), [prog2.trace()], SchemeKind.UNSAFE, warmup_uops=400
        ).run()
        assert warm.ipc > cold.ipc


class TestRunner:
    def test_run_benchmark_returns_measurement(self):
        profile = get_benchmark("spec2017", "gcc")
        result = run_benchmark(profile, SchemeKind.UNSAFE, 1500)
        assert result.ipc > 0
        assert result.stats.committed_uops > 0
        assert result.scheme is SchemeKind.UNSAFE

    def test_trace_cache_reuses_traces(self):
        profile = get_benchmark("spec2017", "gcc")
        cache = TraceCache()
        first = cache.get(profile, 1, 1200)
        second = cache.get(profile, 1, 1200)
        assert first is second

    def test_schemes_see_identical_traces(self):
        profile = get_benchmark("spec2017", "xalancbmk")
        cache = TraceCache()
        config = RunConfig(cache=cache)
        a = run_benchmark(profile, SchemeKind.UNSAFE, 1500, config=config)
        b = run_benchmark(profile, SchemeKind.STT, 1500, config=config)
        assert a.stats.committed_uops == b.stats.committed_uops

    def test_default_trace_length_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "4242")
        assert default_trace_length() == 4242
        monkeypatch.setenv("REPRO_TRACE_LEN", "10")
        assert default_trace_length() == 500  # clamped
        monkeypatch.delenv("REPRO_TRACE_LEN")
        assert default_trace_length(9999) == 9999

    def test_parallel_run(self):
        profile = get_benchmark("parsec", "canneal")
        result = run_benchmark(
            profile, SchemeKind.STT_RECON, 800, config=RunConfig(threads=4)
        )
        assert len(result.per_core) == 4
        assert result.stats.committed_uops > 0
