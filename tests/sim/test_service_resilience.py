"""Resilience tests for the sweep service and its HTTP clients.

Covers the hardened edges added with the durable service: circuit
breaker, admission control (429 + Retry-After), idempotent submits,
bearer-token auth, liveness vs. readiness, deterministic response
chaos, and the client retry ladder — the transport-fault cases run
against canned single-purpose TCP servers so every byte on the wire is
scripted and the tests stay deterministic.
"""

import asyncio
import contextlib
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

pytestmark = pytest.mark.service

import repro.api as api_mod
from repro.api import (
    RunRequest,
    ServiceUnavailableError,
    poll,
    result,
    submit_suite,
)
from repro.sim.chaos import ServiceChaosConfig, parse_service_chaos
from repro.sim.service import (
    CircuitBreaker,
    ServiceBusyError,
    SweepService,
    _serve_async,
)


@contextlib.contextmanager
def serve(service):
    """Run ``service`` on an ephemeral port; yields its base URL."""
    ready = threading.Event()
    bound = []
    holder = {}

    def run():
        loop = asyncio.new_event_loop()
        holder["loop"] = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(
                _serve_async(service, "127.0.0.1", 0, ready=ready, bound=bound)
            )
        except asyncio.CancelledError:
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "service failed to start"
    host, port = bound[0]
    try:
        yield f"http://{host}:{port}"
    finally:
        loop = holder.get("loop")
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(
                lambda: [task.cancel() for task in asyncio.all_tasks(loop)]
            )
        service.close()


def _cell(scheme="stt"):
    return {"benchmark": "spec2017/mcf", "scheme": scheme, "length": 300}


def _raw(url, *, method="GET", payload=None, headers=None):
    """One raw HTTP exchange: (status, lower-cased headers, decoded body)."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json", **(headers or {})},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            status, raw_headers, body = (
                response.status,
                response.headers,
                response.read(),
            )
    except urllib.error.HTTPError as exc:
        status, raw_headers, body = exc.code, exc.headers or {}, exc.read()
    return (
        status,
        {k.lower(): v for k, v in raw_headers.items()},
        json.loads(body) if body else {},
    )


@pytest.fixture
def fast_retries(monkeypatch):
    """Shrink the client backoff so retry-ladder tests run in tens of ms."""
    monkeypatch.setattr(api_mod, "_RETRY_BACKOFF_S", 0.01)
    monkeypatch.setattr(api_mod, "_RETRY_BACKOFF_CAP_S", 0.05)


class TestCircuitBreaker:
    def test_trips_at_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown_s=30.0, clock=clock)
        breaker.record_crash()
        breaker.record_crash()
        assert breaker.state == "closed"
        breaker.record_crash()
        assert breaker.state == "open"
        assert breaker.trips == 1
        allowed, retry_after = breaker.allow_submit()
        assert not allowed
        assert 0 < retry_after <= 30.0

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_crash()
        breaker.record_success()
        breaker.record_crash()
        assert breaker.state == "closed"  # never two in a row

    def test_cooldown_half_open_then_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0, clock=clock)
        breaker.record_crash()
        assert breaker.allow_submit() == (False, 10.0)
        clock.advance(10.0)
        allowed, _ = breaker.allow_submit()
        assert allowed and breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.resets == 1

    def test_half_open_crash_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown_s=10.0, clock=clock)
        for _ in range(3):
            breaker.record_crash()
        clock.advance(10.0)
        breaker.allow_submit()
        assert breaker.state == "half_open"
        breaker.record_crash()  # one probe failure is enough
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown_s=0.0)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestAdmissionControl:
    def test_queue_full_raises_429(self):
        service = SweepService(
            backend="inline", store=False, max_queued=1, start_workers=False
        )
        service.submit([_cell()], {})
        with pytest.raises(ServiceBusyError) as exc_info:
            service.submit([_cell("unsafe")], {})
        assert exc_info.value.status == 429
        assert "queue full (1/1 open jobs)" in str(exc_info.value)
        assert exc_info.value.retry_after_s == 1.0
        assert service.metrics.counters["admission_rejected"].value == 1
        service.close()

    def test_open_breaker_raises_503_but_reads_still_work(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=60.0)
        service = SweepService(
            backend="inline", store=False, breaker=breaker, start_workers=False
        )
        job = service.submit([_cell()], {})
        breaker.record_crash()
        with pytest.raises(ServiceBusyError) as exc_info:
            service.submit([_cell("unsafe")], {})
        assert exc_info.value.status == 503
        assert "degraded" in str(exc_info.value)
        # Degraded is read-only, not dead: lookups still answer.
        assert service.get(job.job_id) is job
        assert service.health()["breaker"] == "open"
        service.close()

    def test_http_429_carries_retry_after_and_client_waits_it_out(
        self, monkeypatch, fast_retries
    ):
        monkeypatch.setenv("REPRO_STORE", "off")
        gate = threading.Event()
        real = api_mod.run_suite

        def gated(*args, **kwargs):
            gate.wait(30)
            return real(*args, **kwargs)

        monkeypatch.setattr(api_mod, "run_suite", gated)
        service = SweepService(
            jobs=1, backend="inline", store=False, max_queued=1
        )
        with serve(service) as url:
            first = submit_suite(
                [RunRequest("spec2017/mcf", "stt", 300)], url=url
            )
            status, headers, body = _raw(
                f"{url}/v1/suites",
                method="POST",
                payload={"requests": [_cell("unsafe")]},
            )
            assert status == 429
            assert headers["retry-after"] == "1.0"
            assert "queue full" in body["error"]
            # submit_suite retries 429s transparently: free the queue
            # shortly and the same call succeeds without caller logic.
            threading.Timer(0.3, gate.set).start()
            second = submit_suite(
                [RunRequest("spec2017/mcf", "unsafe", 300)],
                url=url,
                busy_wait_s=30.0,
            )
            assert second != first
            assert result(second, url=url, timeout_s=120).records

    def test_busy_wait_zero_surfaces_the_429(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        service = SweepService(
            backend="inline", store=False, max_queued=1, start_workers=False
        )
        with serve(service) as url:
            submit_suite(
                [RunRequest("spec2017/mcf", "stt", 300)],
                url=url,
                busy_wait_s=0.0,
            )
            with pytest.raises(RuntimeError, match="queue full"):
                submit_suite(
                    [RunRequest("spec2017/mcf", "unsafe", 300)],
                    url=url,
                    busy_wait_s=0.0,
                )


class TestIdempotency:
    def test_same_key_returns_same_job(self):
        service = SweepService(
            backend="inline", store=False, start_workers=False
        )
        job, replayed = service.submit_job([_cell()], {}, idempotency_key="k1")
        again, replayed_again = service.submit_job(
            [_cell()], {}, idempotency_key="k1"
        )
        assert not replayed and replayed_again
        assert again is job
        assert (
            service.metrics.counters["admission_idempotent_replays"].value == 1
        )
        service.close()

    def test_replay_wins_over_admission_control(self):
        """A lost-response retry must succeed even when the queue is full."""
        service = SweepService(
            backend="inline", store=False, max_queued=1, start_workers=False
        )
        job, _ = service.submit_job([_cell()], {}, idempotency_key="k1")
        again, replayed = service.submit_job(
            [_cell()], {}, idempotency_key="k1"
        )
        assert replayed and again is job
        service.close()

    def test_http_replay_returns_200_with_same_job(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        service = SweepService(jobs=1, backend="inline", store=False)
        with serve(service) as url:
            payload = {"requests": [_cell()], "idempotency_key": "pin-1"}
            status, _, first = _raw(
                f"{url}/v1/suites", method="POST", payload=payload
            )
            assert status == 202
            assert first.get("replayed") is False
            status, _, second = _raw(
                f"{url}/v1/suites", method="POST", payload=payload
            )
            assert status == 200
            assert second["job"] == first["job"]
            assert second["replayed"] is True

    def test_client_pins_key_across_transparent_retries(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        service = SweepService(jobs=1, backend="inline", store=False)
        with serve(service) as url:
            requests = [RunRequest("spec2017/mcf", "stt", 300)]
            first = submit_suite(requests, url=url, idempotency_key="pin-2")
            second = submit_suite(requests, url=url, idempotency_key="pin-2")
            assert first == second


class TestAuth:
    @pytest.fixture
    def secured(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        monkeypatch.delenv("REPRO_SERVE_TOKEN", raising=False)
        service = SweepService(jobs=1, backend="inline", store=False,
                               token="s3cret")
        with serve(service) as url:
            yield url, service

    def test_missing_or_wrong_token_is_401(self, secured):
        url, service = secured
        status, _, body = _raw(f"{url}/v1/jobs")
        assert status == 401 and "bearer token" in body["error"]
        status, _, _ = _raw(
            f"{url}/v1/jobs", headers={"Authorization": "Bearer nope"}
        )
        assert status == 401
        assert service.metrics.counters["service_auth_rejected"].value == 2
        with pytest.raises(RuntimeError, match="bearer token"):
            poll("job-0001", url=url)

    def test_correct_token_roundtrip(self, secured):
        url, _ = secured
        requests = [RunRequest("spec2017/mcf", "stt", 300)]
        job = submit_suite(requests, url=url, token="s3cret")
        suite = result(job, url=url, token="s3cret", timeout_s=120)
        assert len(suite.records) == 1

    def test_env_token_fallback(self, secured, monkeypatch):
        url, _ = secured
        monkeypatch.setenv("REPRO_SERVE_TOKEN", "s3cret")
        job = submit_suite([RunRequest("spec2017/mcf", "stt", 300)], url=url)
        assert poll(job, url=url)["status"] in ("queued", "running", "done")

    def test_health_probes_are_exempt(self, secured):
        url, _ = secured
        for path in ("/healthz", "/readyz", "/v1/health"):
            status, _, _ = _raw(f"{url}{path}")
            assert status == 200, path


class TestHealthAndReadiness:
    def test_healthz_and_readyz_when_healthy(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        service = SweepService(jobs=1, backend="inline", store=False)
        with serve(service) as url:
            status, _, body = _raw(f"{url}/healthz")
            assert status == 200 and body["status"] == "ok"
            status, _, body = _raw(f"{url}/readyz")
            assert status == 200 and body["status"] == "ready"
            assert body["workers_alive"] is True

    def test_readyz_503_when_breaker_open(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        breaker = CircuitBreaker(threshold=1, cooldown_s=60.0)
        service = SweepService(
            jobs=1, backend="inline", store=False, breaker=breaker
        )
        with serve(service) as url:
            breaker.record_crash()
            status, headers, body = _raw(f"{url}/readyz")
            assert status == 503
            assert headers["retry-after"] == "1"
            assert body["breaker"] == "open"
            # Liveness is unchanged; reads are served in degraded mode.
            assert _raw(f"{url}/healthz")[0] == 200
            assert _raw(f"{url}/v1/jobs")[0] == 200

    def test_metrics_endpoint_exposes_service_counters(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        service = SweepService(jobs=1, backend="inline", store=False)
        with serve(service) as url:
            job = submit_suite([RunRequest("spec2017/mcf", "stt", 300)],
                               url=url)
            result(job, url=url, timeout_s=120)
            status, _, body = _raw(f"{url}/v1/metrics")
            assert status == 200
            counters = body["counters"]
            assert counters["admission_accepted"] == 1
            assert counters["service_cells_completed"] == 1


class CannedServer:
    """A TCP server that plays one scripted response per connection.

    Each script receives the connected socket after the full request has
    been read; when the scripts run out the listener closes, so later
    attempts see connection-refused (also a transport fault).
    """

    def __init__(self, scripts):
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self.url = f"http://127.0.0.1:{self.port}"
        self._thread = threading.Thread(
            target=self._serve, args=(list(scripts),), daemon=True
        )
        self._thread.start()

    def _serve(self, scripts):
        for script in scripts:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                _drain_request(conn)
                script(conn)
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
        self._listener.close()


def _drain_request(conn):
    conn.settimeout(5)
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = conn.recv(4096)
        if not chunk:
            return
        data += chunk


def _http_response(payload, *, truncate=False):
    body = json.dumps(payload).encode("utf-8")
    head = (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin-1")
    return head + (body[: len(body) // 2] if truncate else body)


def _send_ok(payload):
    def script(conn):
        conn.sendall(_http_response(payload))

    return script


def _send_truncated(payload):
    def script(conn):
        conn.sendall(_http_response(payload, truncate=True))

    return script


def _drop(conn):
    pass  # close without a single response byte


def _stall(conn):
    time.sleep(1.5)  # longer than the client's socket timeout


class TestClientTransportResilience:
    def test_connection_refused_raises_typed_error(self, fast_retries):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        url = f"http://127.0.0.1:{port}"
        with pytest.raises(ServiceUnavailableError) as exc_info:
            poll("job-0001", url=url)
        error = exc_info.value
        assert error.attempts == 5  # 1 try + 4 retries
        assert error.url.startswith(url)
        assert "repro serve" in str(error)

    def test_truncated_response_is_retried(self, fast_retries):
        done = {"status": "done", "records": 3, "failures": 0}
        server = CannedServer([_send_truncated(done), _send_ok(done)])
        assert poll("job-0001", url=server.url) == done

    def test_dropped_connection_is_retried(self, fast_retries):
        done = {"status": "done", "records": 1, "failures": 0}
        server = CannedServer([_drop, _drop, _send_ok(done)])
        assert poll("job-0001", url=server.url) == done

    def test_slow_loris_hits_socket_timeout_then_fails_typed(
        self, fast_retries
    ):
        server = CannedServer([_stall])
        with pytest.raises(ServiceUnavailableError):
            poll("job-0001", url=server.url, timeout_s=0.2)

    def test_truncated_submit_replays_idempotently(
        self, monkeypatch, fast_retries
    ):
        """A submit whose 202 is lost on the wire must not double-enqueue."""
        monkeypatch.setenv("REPRO_STORE", "off")
        service = SweepService(
            backend="inline", store=False, start_workers=False
        )
        # chaos: truncate exactly the first /v1/suites response.
        original = service._apply_response_chaos
        state = {"seen": 0}

        def truncate_first(writer, method, route):
            if route == "/v1/suites":
                state["seen"] += 1
                if state["seen"] == 1:
                    writer._repro_chaos = ("truncate", 0.0)
                    return True
            return original(writer, method, route)

        service._apply_response_chaos = truncate_first
        with serve(service) as url:
            job = submit_suite(
                [RunRequest("spec2017/mcf", "stt", 300)], url=url
            )
            assert state["seen"] >= 2  # the retry really happened
            assert [j["job"] for j in service.list_jobs()] == [job]


class TestServiceChaos:
    def test_parse_round_trip(self):
        config = parse_service_chaos(
            "seed=7,drop=0.1,truncate=0.2,slow=0.3,slow_s=0.05,"
            "kill_after_cells=4"
        )
        assert config == ServiceChaosConfig(
            seed=7, drop=0.1, truncate=0.2, slow=0.3, slow_s=0.05,
            kill_after_cells=4,
        )
        assert config.active()
        assert not ServiceChaosConfig().active()

    def test_parse_rejects_unknown_field(self):
        with pytest.raises(ValueError):
            parse_service_chaos("seed=1,sabotage=1.0")

    def test_decide_response_is_deterministic(self):
        config = ServiceChaosConfig(seed=3, drop=0.3, truncate=0.3)
        tokens = [f"GET:/v1/jobs:{i}" for i in range(64)]
        first = [config.decide_response(t) for t in tokens]
        second = [config.decide_response(t) for t in tokens]
        assert first == second
        assert {"drop", "truncate"} <= set(k for k in first if k)

    def test_drop_chaos_spares_health_probes(self, monkeypatch, fast_retries):
        monkeypatch.setenv("REPRO_STORE", "off")
        service = SweepService(
            jobs=1, backend="inline", store=False,
            chaos="seed=1,drop=1.0", start_workers=False,
        )
        with serve(service) as url:
            assert _raw(f"{url}/healthz")[0] == 200  # exempt, always
            with pytest.raises(ServiceUnavailableError):
                poll("job-0001", url=url)
            assert service.metrics.counters["service_chaos_drop"].value >= 1

    def test_slow_chaos_streams_complete_responses(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        service = SweepService(
            jobs=1, backend="inline", store=False,
            chaos="seed=1,slow=1.0,slow_s=0.01",
        )
        with serve(service) as url:
            job = submit_suite([RunRequest("spec2017/mcf", "stt", 300)],
                               url=url)
            suite = result(job, url=url, timeout_s=120)
            assert len(suite.records) == 1
            assert service.metrics.counters["service_chaos_slow"].value >= 1
