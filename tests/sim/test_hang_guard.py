"""Hang-guard semantics of ``System.run`` and ``Core.run``.

``max_cycles`` is an exclusive budget: a run may use cycles
``0..max_cycles-1`` and must raise before simulating cycle
``max_cycles`` (the legacy loop had an off-by-one that allowed
``max_cycles + 1`` iterations).  The single-core fast path delegates to
``Core.run`` and must raise the *same* error as the multicore loop.
"""

import pytest

from repro.common import SchemeKind, SystemParams
from repro.common.errors import SimulationHangError
from repro.isa import Program
from repro.sim import System


def programs(count):
    out = []
    for seed in range(1, count + 1):
        prog = Program()
        for i in range(60):
            prog.li(1, (i * seed * 64) % 0x2000)
            prog.load(2, base=1)
        out.append(prog.trace())
    return out


def finish_cycles(num_traces):
    system = System(
        SystemParams(num_cores=num_traces),
        programs(num_traces),
        SchemeKind.UNSAFE,
    )
    return system.run().cycles


class TestHangGuard:
    def test_single_core_budget_is_exclusive(self):
        cycles = finish_cycles(1)
        system = System(SystemParams(), programs(1), SchemeKind.UNSAFE)
        with pytest.raises(
            RuntimeError, match=f"exceeded {cycles - 1} cycles; likely hang"
        ):
            system.run(max_cycles=cycles - 1)

    def test_single_core_exact_budget_completes(self):
        cycles = finish_cycles(1)
        system = System(SystemParams(), programs(1), SchemeKind.UNSAFE)
        assert system.run(max_cycles=cycles).cycles == cycles

    def test_multicore_budget_is_exclusive(self):
        cycles = finish_cycles(2)
        system = System(
            SystemParams(num_cores=2), programs(2), SchemeKind.UNSAFE
        )
        with pytest.raises(
            RuntimeError, match=f"exceeded {cycles - 1} cycles; likely hang"
        ):
            system.run(max_cycles=cycles - 1)

    def test_multicore_exact_budget_completes(self):
        cycles = finish_cycles(2)
        system = System(
            SystemParams(num_cores=2), programs(2), SchemeKind.UNSAFE
        )
        assert system.run(max_cycles=cycles).cycles == cycles

    def test_fast_path_and_lockstep_raise_identical_messages(self):
        def trip(num_traces):
            system = System(
                SystemParams(num_cores=num_traces),
                programs(num_traces),
                SchemeKind.UNSAFE,
            )
            with pytest.raises(RuntimeError) as info:
                system.run(max_cycles=10)
            return str(info.value)

        assert trip(1) == trip(2) == "exceeded 10 cycles; likely hang"


class TestHangDiagnostics:
    """The hang guard raises a structured, diagnosable error."""

    def _trip(self, num_traces, max_cycles=10):
        system = System(
            SystemParams(num_cores=num_traces),
            programs(num_traces),
            SchemeKind.UNSAFE,
        )
        with pytest.raises(SimulationHangError) as info:
            system.run(max_cycles=max_cycles)
        return info.value

    def test_is_a_runtime_error_subclass(self):
        # Legacy callers catching RuntimeError must keep working.
        assert issubclass(SimulationHangError, RuntimeError)

    def test_single_core_carries_state(self):
        error = self._trip(1)
        assert error.max_cycles == 10
        assert error.cycle is not None and error.cycle <= 10
        assert len(error.rob_head_seqs) == 1
        assert error.rob_head_seqs[0] >= 0  # something stuck at the head
        assert len(error.mshr_outstanding) == 1
        assert error.event_queue_depth >= 0

    def test_multicore_carries_per_core_state(self):
        error = self._trip(2)
        assert len(error.rob_head_seqs) == 2
        assert len(error.mshr_outstanding) == 2

    def test_diagnostics_dict_is_json_safe(self):
        import json

        error = self._trip(1)
        payload = json.loads(json.dumps(error.diagnostics()))
        assert payload["max_cycles"] == 10
        assert "rob_head_seqs" in payload
        assert "event_queue_depth" in payload

    def test_details_one_liner_mentions_state(self):
        error = self._trip(1)
        text = error.details()
        assert "cycle" in text
        assert "rob" in text.lower()
